//! Scale factors R₁–R₄ for the scalability study (§5.4).

use crate::fleet::FleetConfig;

/// Fleet configuration for scale factor `x` (R₁ = 1, …, R₄ = 4):
/// `x` times the records via `x` times the vehicles, identical
/// spatio-temporal bounding box — exactly how the paper scales R.
pub fn r_config(factor: u32, base_records: u64, seed: u64) -> FleetConfig {
    assert!((1..=8).contains(&factor), "paper uses x1..x4; allow to x8");
    let base = FleetConfig::default();
    FleetConfig {
        records: base_records * u64::from(factor),
        vehicles: base.vehicles * factor,
        seed,
        ..base
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fleet::generate;
    use sts_geo::GeoPoint;

    #[test]
    fn scaling_multiplies_records_not_extent() {
        let r1 = r_config(1, 2_000, 7);
        let r3 = r_config(3, 2_000, 7);
        assert_eq!(r3.records, 3 * r1.records);
        assert_eq!(r3.vehicles, 3 * r1.vehicles);
        assert_eq!(r3.span_days, r1.span_days);
        let recs = generate(&r3);
        assert_eq!(recs.len(), 6_000);
        assert!(recs
            .iter()
            .all(|r| crate::R_MBR.contains(GeoPoint::new(r.lon, r.lat))));
    }

    #[test]
    #[should_panic(expected = "x1..x4")]
    fn rejects_factor_zero() {
        r_config(0, 100, 1);
    }
}
