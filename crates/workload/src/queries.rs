//! The paper's query workload (§5.1): two spatial sizes × four
//! non-overlapping temporal spans.

use sts_core::StQuery;
use sts_document::DateTime;
use sts_geo::GeoRect;

/// Spatial size class.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub enum QuerySize {
    /// Qˢ — central-Athens rectangle.
    Small,
    /// Qᵇ — ~2,603× larger rectangle north of Athens.
    Big,
}

impl QuerySize {
    /// The paper's exact rectangle for this class.
    pub fn rect(self) -> GeoRect {
        match self {
            QuerySize::Small => GeoRect::new(23.757495, 37.987295, 23.766958, 37.992997),
            QuerySize::Big => GeoRect::new(23.606039, 38.023982, 24.032754, 38.353926),
        }
    }

    /// Paper label.
    pub fn label(self) -> &'static str {
        match self {
            QuerySize::Small => "Qs",
            QuerySize::Big => "Qb",
        }
    }
}

/// Temporal spans of Q₁..Q₄ in hours: 1 hour, 1 day, 1 week, 1 month.
pub const SPANS_HOURS: [i64; 4] = [1, 24, 7 * 24, 30 * 24];

/// Build query `Qₙ` (`n` in 1..=4) of the given size class.
///
/// The paper's queries "do not overlap on the temporal dimension; each
/// one pertains to a discrete time span". Windows are laid out
/// back-to-back starting 30 days into the data set, so the full ladder
/// (1h + 1d + 1w + 1mo ≈ 38 days) fits inside both R's 153-day and S's
/// 76-day spans.
pub fn paper_query(size: QuerySize, n: usize, dataset_start: DateTime) -> StQuery {
    assert!((1..=4).contains(&n), "queries are Q1..Q4");
    let hour = 3_600_000i64;
    let base = dataset_start.plus_millis(30 * 24 * hour);
    // Offsets: Q1 at +0h, Q2 at +2h, Q3 at +27h (after Q2's day),
    // Q4 at +196h (after Q3's week) — mutually disjoint.
    let offsets_h = [0i64, 2, 2 + 24 + 1, 2 + 24 + 1 + 7 * 24 + 1];
    let t0 = base.plus_millis(offsets_h[n - 1] * hour);
    let t1 = t0.plus_millis(SPANS_HOURS[n - 1] * hour);
    StQuery {
        rect: size.rect(),
        t0,
        t1,
    }
}

/// The full 8-query workload for a data set starting at `dataset_start`.
pub fn full_workload(dataset_start: DateTime) -> Vec<(QuerySize, usize, StQuery)> {
    let mut out = Vec::with_capacity(8);
    for size in [QuerySize::Small, QuerySize::Big] {
        for n in 1..=4 {
            out.push((size, n, paper_query(size, n, dataset_start)));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn start() -> DateTime {
        DateTime::from_ymd_hms(2018, 7, 1, 0, 0, 0)
    }

    #[test]
    fn rect_areas_match_paper_ratio() {
        let ratio = QuerySize::Big.rect().area_km2() / QuerySize::Small.rect().area_km2();
        assert!((2_000.0..3_200.0).contains(&ratio), "{ratio}");
    }

    #[test]
    fn temporal_windows_are_disjoint_and_sized() {
        for size in [QuerySize::Small, QuerySize::Big] {
            let qs: Vec<StQuery> = (1..=4).map(|n| paper_query(size, n, start())).collect();
            for (i, q) in qs.iter().enumerate() {
                let span_h = (q.t1.millis() - q.t0.millis()) / 3_600_000;
                assert_eq!(span_h, SPANS_HOURS[i]);
            }
            for i in 0..4 {
                for j in (i + 1)..4 {
                    assert!(
                        qs[i].t1 <= qs[j].t0 || qs[j].t1 <= qs[i].t0,
                        "Q{} and Q{} overlap",
                        i + 1,
                        j + 1
                    );
                }
            }
        }
    }

    #[test]
    fn ladder_fits_inside_s_span() {
        let last = paper_query(QuerySize::Big, 4, start());
        let s_end = start().plus_millis(76 * 86_400_000);
        assert!(last.t1 <= s_end, "{:?} > {s_end:?}", last.t1);
    }

    #[test]
    fn full_workload_has_eight_queries() {
        let w = full_workload(start());
        assert_eq!(w.len(), 8);
        assert_eq!(
            w.iter().filter(|(s, _, _)| *s == QuerySize::Small).count(),
            4
        );
    }

    #[test]
    #[should_panic(expected = "Q1..Q4")]
    fn rejects_out_of_range_query_number() {
        paper_query(QuerySize::Small, 5, start());
    }
}
