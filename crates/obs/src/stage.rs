//! The query-path stage model shared by the executor, the router and
//! `explain()`.
//!
//! One spatio-temporal query decomposes into these stages:
//!
//! | stage         | where it runs | clock |
//! |---------------|---------------|-------|
//! | `Covering`    | mongos (curve range generation) | wall |
//! | `Routing`     | mongos (chunk-map targeting)    | wall |
//! | `Planning`    | each shard (plan choice + trial runs) | wall |
//! | `IndexScan`   | each shard (B+tree range/skip scan)   | wall |
//! | `FetchFilter` | each shard (doc fetch + residual filter) | wall |
//! | `Recovery`    | router, per shard (injected latency + backoff) | **virtual** |
//! | `Merge`       | mongos (gather/flatten/shape/merge)  | wall |
//!
//! The `Recovery` stage is the virtual-time bridge: under fault
//! injection the router *sums* injected latency and backoff instead of
//! sleeping, and that sum is attributed here — never to the wall-clock
//! scan stages — so breakdowns stay exact during chaos testing.

use std::time::Duration;

/// One stage of the distributed query path.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Stage {
    /// Curve covering-range generation (Hilbert methods only).
    Covering,
    /// Router chunk-map targeting.
    Routing,
    /// Shard-local plan selection, including trial executions.
    Planning,
    /// B+tree index scanning (keys examined, seeks).
    IndexScan,
    /// Document fetch plus residual-filter evaluation.
    FetchFilter,
    /// Fault recovery: virtual injected latency and backoff waits.
    Recovery,
    /// Router-side gather and merge.
    Merge,
}

impl Stage {
    /// Every stage, in query-path order.
    pub const ALL: [Stage; 7] = [
        Stage::Covering,
        Stage::Routing,
        Stage::Planning,
        Stage::IndexScan,
        Stage::FetchFilter,
        Stage::Recovery,
        Stage::Merge,
    ];

    /// The stages that run (and are reported) per shard.
    pub const PER_SHARD: [Stage; 4] = [
        Stage::Planning,
        Stage::IndexScan,
        Stage::FetchFilter,
        Stage::Recovery,
    ];

    /// Stable machine-readable name (used as explain keys and metric
    /// name segments).
    pub fn name(self) -> &'static str {
        match self {
            Stage::Covering => "covering",
            Stage::Routing => "routing",
            Stage::Planning => "planning",
            Stage::IndexScan => "indexScan",
            Stage::FetchFilter => "fetchFilter",
            Stage::Recovery => "recovery",
            Stage::Merge => "merge",
        }
    }
}

impl std::fmt::Display for Stage {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Per-shard stage timing breakdown. The wall-clock stages partition
/// the shard's measured execution window exactly; `recovery` is the
/// shard's virtual delay on top.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StageBreakdown {
    /// Plan selection (incl. trial executions).
    pub planning: Duration,
    /// B+tree scanning.
    pub index_scan: Duration,
    /// Document fetch + residual filtering.
    pub fetch_filter: Duration,
    /// Virtual recovery delay (injected latency + backoff waits).
    pub recovery: Duration,
}

impl StageBreakdown {
    /// `(stage, duration)` pairs in [`Stage::PER_SHARD`] order.
    pub fn entries(&self) -> [(Stage, Duration); 4] {
        [
            (Stage::Planning, self.planning),
            (Stage::IndexScan, self.index_scan),
            (Stage::FetchFilter, self.fetch_filter),
            (Stage::Recovery, self.recovery),
        ]
    }

    /// Sum of all stages — the shard's total (wall + virtual) cost.
    pub fn total(&self) -> Duration {
        self.planning + self.index_scan + self.fetch_filter + self.recovery
    }

    /// Sum of the wall-clock stages only.
    pub fn wall(&self) -> Duration {
        self.planning + self.index_scan + self.fetch_filter
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn entries_cover_all_per_shard_stages() {
        let b = StageBreakdown {
            planning: Duration::from_micros(1),
            index_scan: Duration::from_micros(2),
            fetch_filter: Duration::from_micros(3),
            recovery: Duration::from_micros(4),
        };
        let entries = b.entries();
        assert_eq!(
            entries.map(|(s, _)| s),
            Stage::PER_SHARD,
            "entries follow the canonical stage order"
        );
        let sum: Duration = entries.iter().map(|(_, d)| *d).sum();
        assert_eq!(sum, b.total());
        assert_eq!(b.wall(), Duration::from_micros(6));
        assert_eq!(b.total(), Duration::from_micros(10));
    }

    #[test]
    fn stage_names_are_unique() {
        let mut names: Vec<_> = Stage::ALL.iter().map(|s| s.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), Stage::ALL.len());
    }
}
