//! Ring-buffered windowed time-series sampled from a [`Registry`] on
//! the virtual clock.
//!
//! A [`Timeline`] divides the virtual-time axis into fixed-width
//! windows `[k·w, (k+1)·w)`. The instrumented path keeps recording
//! into its ordinary metrics registry; the timeline only *samples*
//! cumulative dumps at window boundaries and subtracts successive
//! samples into per-window deltas ([`crate::HistogramCounts::delta`]).
//! That makes two invariants structural rather than aspirational:
//!
//! * **windows partition the run** — every recording lands in exactly
//!   one window, because deltas telescope;
//! * **merge of window deltas = cumulative histogram** — bucket-wise
//!   addition over one lattice ([`Timeline::merged_histogram`]).
//!
//! The ring is fixed-capacity and deterministic: old windows are
//! evicted front-first, but their deltas are folded into a retained
//! "dropped" accumulator so the telescoping invariant stays exactly
//! checkable ([`Timeline::validate`]) no matter how long the run.
//!
//! Because the clock is virtual (query time advances by
//! `QueryReport::total_time()`, ingest by measured batch wall time),
//! the same workload produces the same window boundaries on every
//! machine — timeline exports are diffable CI artifacts.

use crate::histogram::HistogramCounts;
use crate::registry::Registry;
use crate::slo::{BurnAlert, SloPolicy, SloTracker, WindowSlo};
use std::collections::{BTreeMap, VecDeque};
use std::sync::Arc;
use std::time::Duration;

/// Window width and ring capacity for a [`Timeline`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TimelineConfig {
    /// Width of one window on the virtual clock.
    pub window: Duration,
    /// Maximum retained windows; older windows are evicted (their
    /// deltas folded into the dropped accumulator).
    pub capacity: usize,
}

impl Default for TimelineConfig {
    /// 5 ms windows, 512 retained — sized for the bench workloads
    /// whose per-query virtual times are tens of µs to a few ms.
    fn default() -> Self {
        TimelineConfig {
            window: Duration::from_millis(5),
            capacity: 512,
        }
    }
}

/// A discrete occurrence pinned to the virtual clock — balancer
/// splits/migrations, batch commits, fault arming — overlaid on the
/// latency timeline by the exporters.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TimelineEvent {
    /// Virtual timestamp of the event.
    pub at: Duration,
    /// Dotted event kind, e.g. `balancer.migrate` or `ingest.commit`.
    pub kind: String,
    /// Free-form detail, e.g. `chunk 42: shard 1 → 3 (17 docs)`.
    pub detail: String,
}

/// One sealed window: the registry delta plus everything pinned to it.
#[derive(Clone, Debug)]
pub struct TimelineWindow {
    /// Absolute window number `k` (the window spans `[k·w, (k+1)·w)`).
    pub index: u64,
    /// Inclusive virtual start.
    pub start: Duration,
    /// Exclusive virtual end. For the final window sealed by
    /// [`Timeline::finish`] this is the actual run end, so the sealed
    /// windows exactly partition `[0, run_end)`.
    pub end: Duration,
    /// Counter increments within the window (zero deltas omitted).
    pub counters: Vec<(String, u64)>,
    /// Histogram window deltas (empty deltas omitted).
    pub histograms: Vec<(String, HistogramCounts)>,
    /// Events that occurred within the window, in time order.
    pub events: Vec<TimelineEvent>,
    /// Exact SLO accounting for the window, when a policy is attached.
    pub slo: Option<WindowSlo>,
    /// Burn alerts that fired when this window rolled.
    pub alerts: Vec<BurnAlert>,
}

impl TimelineWindow {
    /// Counter delta by name (0 when absent, i.e. unchanged).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map_or(0, |(_, v)| *v)
    }

    /// Histogram window delta by name.
    pub fn histogram(&self, name: &str) -> Option<&HistogramCounts> {
        self.histograms
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, h)| h)
    }
}

/// Windowed time-series over one store's metrics [`Registry`].
pub struct Timeline {
    registry: Arc<Registry>,
    cfg: TimelineConfig,
    now: Duration,
    open_index: u64,
    base_counters: BTreeMap<String, u64>,
    base_hists: BTreeMap<String, HistogramCounts>,
    cursor_counters: BTreeMap<String, u64>,
    cursor_hists: BTreeMap<String, HistogramCounts>,
    dropped_counters: BTreeMap<String, u64>,
    dropped_hists: BTreeMap<String, HistogramCounts>,
    windows: VecDeque<TimelineWindow>,
    dropped: u64,
    pending_events: Vec<TimelineEvent>,
    slo: Option<SloTracker>,
    finished: bool,
}

impl Timeline {
    /// Start a timeline over `registry` at virtual time zero. The
    /// current registry contents become the base sample — only deltas
    /// from here on are attributed to windows.
    pub fn new(registry: Arc<Registry>, cfg: TimelineConfig) -> Timeline {
        assert!(!cfg.window.is_zero(), "timeline window width must be > 0");
        assert!(cfg.capacity > 0, "timeline capacity must be > 0");
        let counters: BTreeMap<String, u64> = registry.counter_values().into_iter().collect();
        let hists: BTreeMap<String, HistogramCounts> =
            registry.histogram_counts().into_iter().collect();
        Timeline {
            registry,
            cfg,
            now: Duration::ZERO,
            open_index: 0,
            base_counters: counters.clone(),
            base_hists: hists.clone(),
            cursor_counters: counters,
            cursor_hists: hists,
            dropped_counters: BTreeMap::new(),
            dropped_hists: BTreeMap::new(),
            windows: VecDeque::new(),
            dropped: 0,
            pending_events: Vec::new(),
            slo: None,
            finished: false,
        }
    }

    /// Attach a latency SLO; subsequent [`Timeline::observe_latency`]
    /// (Self::observe_latency) calls count against it and every window
    /// seal rolls it.
    pub fn set_slo(&mut self, policy: SloPolicy) {
        self.slo = Some(SloTracker::new(policy));
    }

    /// The attached SLO tracker, if any.
    pub fn slo(&self) -> Option<&SloTracker> {
        self.slo.as_ref()
    }

    /// Timeline configuration.
    pub fn config(&self) -> TimelineConfig {
        self.cfg
    }

    /// Current virtual time.
    pub fn now(&self) -> Duration {
        self.now
    }

    /// True once [`finish`](Self::finish) sealed the run.
    pub fn is_finished(&self) -> bool {
        self.finished
    }

    /// Sealed windows currently retained in the ring, oldest first.
    pub fn windows(&self) -> impl Iterator<Item = &TimelineWindow> {
        self.windows.iter()
    }

    /// Number of retained windows.
    pub fn len(&self) -> usize {
        self.windows.len()
    }

    /// True when no window has been sealed (or all were evicted).
    pub fn is_empty(&self) -> bool {
        self.windows.is_empty()
    }

    /// Windows evicted from the ring so far.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Record one event latency against the attached SLO (no-op
    /// without a policy). The caller still records the same latency
    /// into its registry histograms; this is only the exact good/bad
    /// accounting.
    pub fn observe_latency(&mut self, latency: Duration) {
        if let Some(slo) = &mut self.slo {
            slo.observe(latency);
        }
    }

    /// Pin an event to the current virtual time.
    pub fn annotate(&mut self, kind: impl Into<String>, detail: impl Into<String>) {
        self.pending_events.push(TimelineEvent {
            at: self.now,
            kind: kind.into(),
            detail: detail.into(),
        });
    }

    /// Advance the virtual clock by `dt`, sealing every window whose
    /// end is crossed. All registry activity since the previous seal is
    /// attributed to the window that was open when `advance` was
    /// called; windows skipped by a large jump seal empty.
    pub fn advance(&mut self, dt: Duration) {
        assert!(!self.finished, "timeline already finished");
        self.now = self.now.saturating_add(dt);
        while self.now >= self.window_end(self.open_index) {
            let end = self.window_end(self.open_index);
            self.seal(end);
        }
    }

    /// Seal the final (possibly partial) window at the current virtual
    /// time, so the sealed windows exactly partition `[0, now)`. A
    /// zero-length open window with no pending activity is skipped.
    pub fn finish(&mut self) {
        if self.finished {
            return;
        }
        let start = self.window_start(self.open_index);
        if self.now > start || !self.pending_events.is_empty() || self.open_slo_nonempty() {
            let end = self.now.max(start);
            self.seal(end);
        }
        self.finished = true;
    }

    fn open_slo_nonempty(&self) -> bool {
        self.slo.as_ref().is_some_and(|s| s.open_window().0 > 0)
    }

    fn window_nanos(&self) -> u64 {
        u64::try_from(self.cfg.window.as_nanos()).unwrap_or(u64::MAX)
    }

    fn window_start(&self, index: u64) -> Duration {
        Duration::from_nanos(self.window_nanos().saturating_mul(index))
    }

    fn window_end(&self, index: u64) -> Duration {
        Duration::from_nanos(self.window_nanos().saturating_mul(index + 1))
    }

    /// Seal the open window with exclusive end `end`, sampling the
    /// registry and attributing the delta since the last seal to it.
    fn seal(&mut self, end: Duration) {
        let index = self.open_index;
        let start = self.window_start(index);

        let now_counters: BTreeMap<String, u64> =
            self.registry.counter_values().into_iter().collect();
        let now_hists: BTreeMap<String, HistogramCounts> =
            self.registry.histogram_counts().into_iter().collect();

        let mut counters = Vec::new();
        for (name, v) in &now_counters {
            let before = self.cursor_counters.get(name).copied().unwrap_or(0);
            let d = v.saturating_sub(before);
            if d > 0 {
                counters.push((name.clone(), d));
            }
        }
        let mut histograms = Vec::new();
        for (name, h) in &now_hists {
            let delta = match self.cursor_hists.get(name) {
                Some(before) => h.delta(before),
                None => h.clone(),
            };
            if !delta.is_empty() {
                histograms.push((name.clone(), delta));
            }
        }
        self.cursor_counters = now_counters;
        self.cursor_hists = now_hists;

        // Events inside this window stay; later ones (a large advance
        // jumped past several boundaries) wait for their own window.
        let mut events = Vec::new();
        let mut rest = Vec::new();
        for e in self.pending_events.drain(..) {
            if e.at < end || (e.at == end && end == self.now) {
                events.push(e);
            } else {
                rest.push(e);
            }
        }
        self.pending_events = rest;

        let (slo, alerts) = match &mut self.slo {
            Some(tracker) => {
                let fired = tracker.roll(index);
                (tracker.windows().last().copied(), fired)
            }
            None => (None, Vec::new()),
        };

        self.windows.push_back(TimelineWindow {
            index,
            start,
            end,
            counters,
            histograms,
            events,
            slo,
            alerts,
        });
        self.open_index += 1;

        while self.windows.len() > self.cfg.capacity {
            let evicted = self.windows.pop_front().expect("len > capacity > 0");
            self.dropped += 1;
            for (name, d) in evicted.counters {
                *self.dropped_counters.entry(name).or_insert(0) += d;
            }
            for (name, h) in evicted.histograms {
                self.dropped_hists
                    .entry(name)
                    .or_insert_with(HistogramCounts::empty)
                    .merge(&h);
            }
        }
    }

    /// Merge every retained window delta of `name` (plus the deltas of
    /// evicted windows) back into one cumulative dump. After
    /// [`finish`](Self::finish), this equals the registry histogram's
    /// cumulative counts minus the base sample — the delta-merge
    /// invariant the property tests assert.
    pub fn merged_histogram(&self, name: &str) -> HistogramCounts {
        let mut acc = self
            .dropped_hists
            .get(name)
            .cloned()
            .unwrap_or_else(HistogramCounts::empty);
        for w in &self.windows {
            if let Some(h) = w.histogram(name) {
                acc.merge(h);
            }
        }
        acc
    }

    /// Sum of `name`'s counter deltas over every window ever sealed.
    pub fn merged_counter(&self, name: &str) -> u64 {
        self.dropped_counters.get(name).copied().unwrap_or(0)
            + self.windows.iter().map(|w| w.counter(name)).sum::<u64>()
    }

    /// Check every structural invariant. Cheap enough to run at export
    /// time; `obs-report --timeline` exits non-zero when this fails.
    ///
    /// * retained windows are consecutive, starting at `dropped`;
    /// * window bounds tile the virtual-time axis (`start = k·w`,
    ///   `end = (k+1)·w`, except the final partial window);
    /// * events sit inside their window and in time order;
    /// * for every histogram the merged window deltas equal the last
    ///   cumulative sample minus the base sample (telescoping), and
    ///   likewise for counters;
    /// * the attached SLO tracker's own accounting validates and its
    ///   rows agree with the per-window rows retained here.
    pub fn validate(&self) -> Result<(), String> {
        for (expect, w) in (self.dropped..).zip(self.windows.iter()) {
            if w.index != expect {
                return Err(format!(
                    "window index {} where {} expected",
                    w.index, expect
                ));
            }
            let start = self.window_start(w.index);
            let end = self.window_end(w.index);
            if w.start != start {
                return Err(format!(
                    "window {} start {:?} != {:?}",
                    w.index, w.start, start
                ));
            }
            let is_last = w.index + 1 == self.open_index;
            if w.end != end && !(is_last && self.finished && w.end <= end && w.end >= w.start) {
                return Err(format!("window {} end {:?} != {:?}", w.index, w.end, end));
            }
            let mut prev = w.start;
            for e in &w.events {
                if e.at < w.start || e.at > w.end {
                    return Err(format!(
                        "event {:?} at {:?} outside window {} [{:?}, {:?})",
                        e.kind, e.at, w.index, w.start, w.end
                    ));
                }
                if e.at < prev {
                    return Err(format!("events out of order in window {}", w.index));
                }
                prev = e.at;
            }
            if let Some(s) = &w.slo {
                if s.window != w.index {
                    return Err(format!(
                        "slo row window {} attached to window {}",
                        s.window, w.index
                    ));
                }
            }
        }

        // Telescoping: base + all window deltas == last cumulative sample.
        for (name, cur) in &self.cursor_counters {
            let base = self.base_counters.get(name).copied().unwrap_or(0);
            let merged = self.merged_counter(name);
            if base + merged != *cur {
                return Err(format!(
                    "counter {name:?}: base {base} + window deltas {merged} != cumulative {cur}"
                ));
            }
        }
        for (name, cur) in &self.cursor_hists {
            let mut acc = self
                .base_hists
                .get(name)
                .cloned()
                .unwrap_or_else(HistogramCounts::empty);
            let merged = self.merged_histogram(name);
            acc.merge(&merged);
            if acc.buckets != cur.buckets
                || acc.count != cur.count
                || acc.sum_nanos != cur.sum_nanos
            {
                return Err(format!(
                    "histogram {name:?}: base + merged window deltas != cumulative \
                     (count {} vs {})",
                    acc.count, cur.count
                ));
            }
        }

        if let Some(slo) = &self.slo {
            slo.validate()?;
            for w in &self.windows {
                let Some(row) = &w.slo else {
                    return Err(format!("window {} missing slo row", w.index));
                };
                let tracked = slo
                    .windows()
                    .iter()
                    .find(|s| s.window == w.index)
                    .ok_or_else(|| format!("slo tracker lost window {}", w.index))?;
                if tracked != row {
                    return Err(format!("slo row mismatch at window {}", w.index));
                }
            }
        }
        Ok(())
    }
}

impl std::fmt::Debug for Timeline {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Timeline")
            .field("now", &self.now)
            .field("windows", &self.windows.len())
            .field("dropped", &self.dropped)
            .field("finished", &self.finished)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(n: u64) -> Duration {
        Duration::from_millis(n)
    }

    fn timeline(window_ms: u64, capacity: usize) -> (Arc<Registry>, Timeline) {
        let reg = Arc::new(Registry::new());
        let tl = Timeline::new(
            reg.clone(),
            TimelineConfig {
                window: ms(window_ms),
                capacity,
            },
        );
        (reg, tl)
    }

    #[test]
    fn windows_partition_the_clock() {
        let (reg, mut tl) = timeline(10, 64);
        for i in 0..30 {
            reg.counter("q").inc();
            reg.record("lat", Duration::from_micros(100 + i));
            tl.advance(ms(3));
        }
        tl.finish();
        tl.validate().unwrap();
        // 30 × 3 ms = 90 ms → 9 full windows sealed by advance, none
        // partial (finish at exactly 90 ms opens nothing).
        assert_eq!(tl.len(), 9);
        let mut cursor = Duration::ZERO;
        for w in tl.windows() {
            assert_eq!(w.start, cursor);
            cursor = w.end;
        }
        assert_eq!(cursor, tl.now());
        assert_eq!(tl.merged_counter("q"), 30);
        assert_eq!(tl.merged_histogram("lat").count, 30);
    }

    #[test]
    fn partial_final_window_is_sealed_by_finish() {
        let (reg, mut tl) = timeline(10, 64);
        reg.counter("q").add(5);
        tl.advance(ms(7));
        tl.finish();
        tl.validate().unwrap();
        assert_eq!(tl.len(), 1);
        let w = tl.windows().next().unwrap();
        assert_eq!(w.start, Duration::ZERO);
        assert_eq!(w.end, ms(7));
        assert_eq!(w.counter("q"), 5);
    }

    #[test]
    fn large_jump_seals_empty_windows() {
        let (reg, mut tl) = timeline(10, 64);
        reg.counter("q").inc();
        tl.advance(ms(45));
        tl.finish();
        tl.validate().unwrap();
        assert_eq!(tl.len(), 5); // 4 full + partial [40, 45)
                                 // The whole delta lands in the window open at advance time.
        assert_eq!(tl.windows().next().unwrap().counter("q"), 1);
        assert_eq!(tl.windows().skip(1).map(|w| w.counter("q")).sum::<u64>(), 0);
    }

    #[test]
    fn ring_eviction_preserves_telescoping() {
        let (reg, mut tl) = timeline(10, 4);
        for _ in 0..20 {
            reg.counter("q").add(2);
            reg.record("lat", Duration::from_micros(50));
            tl.advance(ms(10));
        }
        tl.finish();
        tl.validate().unwrap();
        assert_eq!(tl.len(), 4);
        assert_eq!(tl.dropped(), 16);
        assert_eq!(tl.merged_counter("q"), 40);
        assert_eq!(tl.merged_histogram("lat").count, 20);
        assert_eq!(tl.windows().next().unwrap().index, 16);
    }

    #[test]
    fn pre_existing_metrics_are_excluded_by_the_base_sample() {
        let reg = Arc::new(Registry::new());
        reg.counter("q").add(100);
        reg.record("lat", Duration::from_millis(1));
        let mut tl = Timeline::new(
            reg.clone(),
            TimelineConfig {
                window: ms(10),
                capacity: 8,
            },
        );
        reg.counter("q").add(3);
        tl.advance(ms(10));
        tl.finish();
        tl.validate().unwrap();
        assert_eq!(tl.merged_counter("q"), 3);
        assert_eq!(tl.merged_histogram("lat").count, 0);
    }

    #[test]
    fn events_land_in_their_window() {
        let (_reg, mut tl) = timeline(10, 64);
        tl.advance(ms(3));
        tl.annotate("balancer.split", "chunk 7");
        tl.advance(ms(10));
        tl.annotate("balancer.migrate", "chunk 9: 0 → 1");
        tl.finish();
        tl.validate().unwrap();
        let windows: Vec<_> = tl.windows().collect();
        assert_eq!(windows[0].events.len(), 1);
        assert_eq!(windows[0].events[0].kind, "balancer.split");
        assert_eq!(windows[1].events.len(), 1);
        assert_eq!(windows[1].events[0].kind, "balancer.migrate");
    }

    #[test]
    fn slo_rows_ride_the_windows() {
        let (_reg, mut tl) = timeline(10, 64);
        tl.set_slo(SloPolicy {
            name: "q".into(),
            objective: 0.9,
            threshold: Duration::from_millis(1),
            rules: vec![],
        });
        for i in 0..10 {
            let lat = if i < 5 {
                Duration::from_micros(10)
            } else {
                Duration::from_millis(2)
            };
            tl.observe_latency(lat);
            tl.advance(ms(2));
        }
        tl.finish();
        tl.validate().unwrap();
        let rows: Vec<_> = tl.windows().filter_map(|w| w.slo).collect();
        assert_eq!(rows.iter().map(|r| r.total).sum::<u64>(), 10);
        assert_eq!(rows.iter().map(|r| r.bad).sum::<u64>(), 5);
    }
}
