//! Lightweight span timers: measure a scope's wall time into a
//! histogram.
//!
//! A [`Span`] is a drop guard — `Instant::now()` on entry, one
//! histogram record on exit — so instrumenting a stage costs two clock
//! reads and one atomic add. Spans measure **real compute only**;
//! virtual delays from fault injection are accounted separately (see
//! the crate docs on virtual time).

use crate::histogram::Histogram;
use std::time::{Duration, Instant};

/// A drop-guard timer recording its lifetime into a histogram.
pub struct Span<'a> {
    hist: &'a Histogram,
    start: Instant,
    armed: bool,
}

impl<'a> Span<'a> {
    /// Start timing; the elapsed time records into `hist` on drop.
    pub fn enter(hist: &'a Histogram) -> Self {
        Span {
            hist,
            start: Instant::now(),
            armed: true,
        }
    }

    /// Elapsed time so far.
    pub fn elapsed(&self) -> Duration {
        self.start.elapsed()
    }

    /// Stop early, record, and return the elapsed time.
    pub fn exit(mut self) -> Duration {
        let d = self.start.elapsed();
        self.hist.record(d);
        self.armed = false;
        d
    }

    /// Abandon without recording (e.g. an aborted stage).
    pub fn cancel(mut self) {
        self.armed = false;
    }
}

impl Drop for Span<'_> {
    fn drop(&mut self) {
        if self.armed {
            self.hist.record(self.start.elapsed());
        }
    }
}

/// Time a closure into `hist`, returning its result.
pub fn time<R>(hist: &Histogram, f: impl FnOnce() -> R) -> R {
    let _span = Span::enter(hist);
    f()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_records_on_drop() {
        let h = Histogram::new();
        {
            let _s = Span::enter(&h);
        }
        assert_eq!(h.count(), 1);
    }

    #[test]
    fn exit_records_once_and_returns_elapsed() {
        let h = Histogram::new();
        let s = Span::enter(&h);
        let d = s.exit();
        assert_eq!(h.count(), 1);
        assert!(h.max() >= Duration::ZERO);
        assert!(d <= h.max().max(d));
    }

    #[test]
    fn cancel_records_nothing() {
        let h = Histogram::new();
        Span::enter(&h).cancel();
        assert_eq!(h.count(), 0);
    }

    #[test]
    fn time_returns_the_closure_result() {
        let h = Histogram::new();
        let v = time(&h, || 6 * 7);
        assert_eq!(v, 42);
        assert_eq!(h.count(), 1);
    }
}
