//! Name → metric registry with a process-wide default instance.
//!
//! Recording through a registered metric is a plain atomic op; the
//! registry's `RwLock` is only touched to *resolve* a name (shared
//! read lock on the hot path, exclusive lock once per metric to create
//! it). Call sites that care can resolve once and cache the `Arc`.

use crate::histogram::Histogram;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, OnceLock, RwLock};
use std::time::Duration;

/// A monotonically increasing count.
#[derive(Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Increment by one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Increment by `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A value that can move both ways (queue depths, live shard counts).
#[derive(Default)]
pub struct Gauge(AtomicI64);

impl Gauge {
    /// Overwrite the value.
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Add a (possibly negative) delta.
    pub fn add(&self, delta: i64) {
        self.0.fetch_add(delta, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A named collection of counters, gauges and histograms.
#[derive(Default)]
pub struct Registry {
    counters: RwLock<BTreeMap<String, Arc<Counter>>>,
    gauges: RwLock<BTreeMap<String, Arc<Gauge>>>,
    histograms: RwLock<BTreeMap<String, Arc<Histogram>>>,
}

impl Registry {
    /// An empty registry (tests and scoped instrumentation; most code
    /// uses [`global`]).
    pub fn new() -> Self {
        Self::default()
    }

    /// Resolve (or create) a counter.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        get_or_create(&self.counters, name)
    }

    /// Resolve (or create) a gauge.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        get_or_create(&self.gauges, name)
    }

    /// Resolve (or create) a histogram.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        get_or_create(&self.histograms, name)
    }

    /// Record a duration into a named histogram (resolve + record).
    pub fn record(&self, name: &str, d: Duration) {
        self.histogram(name).record(d);
    }

    /// Snapshot every metric, sorted by name.
    pub fn snapshot(&self) -> RegistrySnapshot {
        RegistrySnapshot {
            counters: self
                .counters
                .read()
                .unwrap()
                .iter()
                .map(|(k, v)| (k.clone(), v.get()))
                .collect(),
            gauges: self
                .gauges
                .read()
                .unwrap()
                .iter()
                .map(|(k, v)| (k.clone(), v.get()))
                .collect(),
            histograms: self
                .histograms
                .read()
                .unwrap()
                .iter()
                .map(|(k, v)| (k.clone(), v.snapshot()))
                .collect(),
        }
    }

    /// Dump every counter value, sorted by name (the cheap cumulative
    /// sample the timeline subtracts into per-window deltas).
    pub fn counter_values(&self) -> Vec<(String, u64)> {
        self.counters
            .read()
            .unwrap()
            .iter()
            .map(|(k, v)| (k.clone(), v.get()))
            .collect()
    }

    /// Dump every histogram's full bucket counts, sorted by name (the
    /// cumulative sample the timeline subtracts into per-window
    /// [`crate::histogram::HistogramCounts`] deltas).
    pub fn histogram_counts(&self) -> Vec<(String, crate::histogram::HistogramCounts)> {
        self.histograms
            .read()
            .unwrap()
            .iter()
            .map(|(k, v)| (k.clone(), v.counts()))
            .collect()
    }

    /// Zero every metric, keeping registrations (benchmarks reset
    /// between phases so each approach reports its own numbers).
    pub fn reset(&self) {
        for c in self.counters.read().unwrap().values() {
            c.0.store(0, Ordering::Relaxed);
        }
        for g in self.gauges.read().unwrap().values() {
            g.set(0);
        }
        for h in self.histograms.read().unwrap().values() {
            h.reset();
        }
    }
}

fn get_or_create<T: Default>(map: &RwLock<BTreeMap<String, Arc<T>>>, name: &str) -> Arc<T> {
    if let Some(m) = map.read().unwrap().get(name) {
        return m.clone();
    }
    map.write()
        .unwrap()
        .entry(name.to_string())
        .or_default()
        .clone()
}

/// Point-in-time dump of a [`Registry`].
#[derive(Clone, Debug)]
pub struct RegistrySnapshot {
    /// `(name, value)` for every counter.
    pub counters: Vec<(String, u64)>,
    /// `(name, value)` for every gauge.
    pub gauges: Vec<(String, i64)>,
    /// `(name, summary)` for every histogram.
    pub histograms: Vec<(String, crate::histogram::HistogramSnapshot)>,
}

impl RegistrySnapshot {
    /// Look up a counter by name.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| *v)
    }

    /// Look up a histogram summary by name.
    pub fn histogram(&self, name: &str) -> Option<&crate::histogram::HistogramSnapshot> {
        self.histograms
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v)
    }
}

fn global_cell() -> &'static Arc<Registry> {
    static GLOBAL: OnceLock<Arc<Registry>> = OnceLock::new();
    GLOBAL.get_or_init(|| Arc::new(Registry::new()))
}

/// The process-wide registry the store's query path records into by
/// default (stores can be rescoped onto their own registry — see
/// `StStore::set_metrics_registry` in `sts-core`).
pub fn global() -> &'static Registry {
    global_cell().as_ref()
}

/// A shared handle to the [`global`] registry, for call sites that
/// store an `Arc<Registry>` and default it to the process-wide one.
pub fn global_handle() -> Arc<Registry> {
    global_cell().clone()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_snapshot() {
        let r = Registry::new();
        r.counter("a").inc();
        r.counter("a").add(4);
        r.counter("b").inc();
        let s = r.snapshot();
        assert_eq!(s.counter("a"), Some(5));
        assert_eq!(s.counter("b"), Some(1));
        assert_eq!(s.counter("missing"), None);
    }

    #[test]
    fn same_name_resolves_to_same_metric() {
        let r = Registry::new();
        let h1 = r.histogram("lat");
        let h2 = r.histogram("lat");
        h1.record(Duration::from_micros(10));
        assert_eq!(h2.count(), 1);
        assert!(Arc::ptr_eq(&h1, &h2));
    }

    #[test]
    fn gauges_move_both_ways() {
        let r = Registry::new();
        let g = r.gauge("depth");
        g.set(10);
        g.add(-3);
        assert_eq!(g.get(), 7);
    }

    #[test]
    fn reset_zeroes_but_keeps_names() {
        let r = Registry::new();
        r.counter("c").add(9);
        r.record("h", Duration::from_millis(1));
        r.reset();
        let s = r.snapshot();
        assert_eq!(s.counter("c"), Some(0));
        assert_eq!(s.histogram("h").unwrap().count, 0);
    }

    #[test]
    fn global_is_a_singleton() {
        let name = "obs.test.global_is_a_singleton";
        global().counter(name).inc();
        assert!(global().snapshot().counter(name).unwrap() >= 1);
    }
}
