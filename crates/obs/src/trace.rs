//! Causal query traces on the virtual clock, exportable to Perfetto.
//!
//! A [`Trace`] is the span tree of one distributed query: a single
//! root span on the router's track parenting `covering` / `routing` /
//! `merge` router stages and one `shardExec` span per targeted shard,
//! which in turn parents that shard's `recovery` → `planning` →
//! `indexScan` → `fetchFilter` stage spans (the stage model of
//! [`crate::stage`]).
//!
//! Span intervals live on a **virtual clock**: offsets from the
//! query's origin computed from the measured stage durations plus any
//! *virtual* recovery delay the fault layer injected (summed, never
//! slept — see the crate docs on virtual time). Shards are laid out
//! concurrently, each on its own track, starting right after the
//! router's routing stage — the timeline a concurrent deployment
//! would exhibit, not the serial order a small test box measured.
//!
//! [`Trace::to_chrome_json`] renders the tree in the Chrome
//! trace-event format (`ph: "X"` complete events), loadable directly
//! in `chrome://tracing` or <https://ui.perfetto.dev>.
//!
//! # Example
//!
//! ```
//! use sts_obs::trace::{Trace, TraceId, Track};
//! use std::time::Duration;
//!
//! let mut t = Trace::new(TraceId(7));
//! let root = t.add_root("stQuery", Track::Router, Duration::ZERO, Duration::from_micros(100));
//! let scan = t.add_child(root, "indexScan", Track::Shard(0),
//!                        Duration::from_micros(10), Duration::from_micros(60));
//! t.set_arg(scan, "keysExamined", 42i64);
//! t.validate().unwrap();
//! assert!(t.to_chrome_json().contains("traceEvents"));
//! ```

use serde::Json;
use std::time::Duration;

/// Identifier of one query's trace. The store uses the profiler's
/// operation sequence number, so trace ids line up with profile
/// entries.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TraceId(pub u64);

/// Identifier of one span within its trace: dense, in allocation
/// order, so a parent's id is always smaller than its children's.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SpanId(pub u64);

/// The timeline lane a span renders on. Perfetto draws one lane
/// ("thread") per track: the router gets lane 0, shard *s* lane
/// *s* + 1.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Track {
    /// The mongos router's lane.
    Router,
    /// One shard's lane.
    Shard(usize),
}

impl Track {
    /// Chrome trace-event `tid` for this track.
    pub fn tid(self) -> u64 {
        match self {
            Track::Router => 0,
            Track::Shard(s) => s as u64 + 1,
        }
    }

    /// Human-readable lane label (the Perfetto thread name).
    pub fn label(self) -> String {
        match self {
            Track::Router => "router".to_string(),
            Track::Shard(s) => format!("shard {s}"),
        }
    }
}

/// An argument value attached to a span, rendered in Perfetto's
/// "Arguments" pane.
#[derive(Clone, Debug, PartialEq)]
pub enum SpanValue {
    /// Integer argument (counters, ids).
    Int(i64),
    /// Floating-point argument.
    Float(f64),
    /// Boolean flag.
    Bool(bool),
    /// String argument (index names, approach labels).
    Str(String),
}

impl From<i64> for SpanValue {
    fn from(v: i64) -> Self {
        SpanValue::Int(v)
    }
}
impl From<u64> for SpanValue {
    fn from(v: u64) -> Self {
        SpanValue::Int(i64::try_from(v).unwrap_or(i64::MAX))
    }
}
impl From<usize> for SpanValue {
    fn from(v: usize) -> Self {
        SpanValue::Int(i64::try_from(v).unwrap_or(i64::MAX))
    }
}
impl From<f64> for SpanValue {
    fn from(v: f64) -> Self {
        SpanValue::Float(v)
    }
}
impl From<bool> for SpanValue {
    fn from(v: bool) -> Self {
        SpanValue::Bool(v)
    }
}
impl From<&str> for SpanValue {
    fn from(v: &str) -> Self {
        SpanValue::Str(v.to_string())
    }
}
impl From<String> for SpanValue {
    fn from(v: String) -> Self {
        SpanValue::Str(v)
    }
}

impl SpanValue {
    fn to_json(&self) -> Json {
        match self {
            SpanValue::Int(v) => Json::Int(*v),
            SpanValue::Float(v) => Json::Float(*v),
            SpanValue::Bool(v) => Json::Bool(*v),
            SpanValue::Str(v) => Json::Str(v.clone()),
        }
    }
}

/// One node of a trace tree: a named interval on the trace's virtual
/// clock, linked to its parent and pinned to a rendering track.
#[derive(Clone, Debug)]
pub struct TraceSpan {
    /// This span's id (dense, allocation order).
    pub id: SpanId,
    /// Parent span — `None` exactly for the root.
    pub parent: Option<SpanId>,
    /// Span name; the stage spans use [`crate::Stage::name`].
    pub name: String,
    /// Rendering lane.
    pub track: Track,
    /// Start offset from the trace origin, on the virtual clock.
    pub start: Duration,
    /// Extent of the span (zero-width spans are legal).
    pub duration: Duration,
    /// Attached key/value arguments.
    pub args: Vec<(String, SpanValue)>,
}

impl TraceSpan {
    /// End offset of the span on the virtual clock.
    pub fn end(&self) -> Duration {
        self.start + self.duration
    }
}

/// Why a trace fails [`Trace::validate`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TraceError {
    /// The trace has no root span (every span has a parent).
    NoRoot,
    /// More than one span claims to be the root.
    MultipleRoots {
        /// Number of parentless spans found.
        count: usize,
    },
    /// A span references a parent id that does not precede it.
    UnknownParent {
        /// The offending span.
        span: SpanId,
    },
    /// A span's interval escapes its parent's interval.
    NotNested {
        /// The offending span.
        span: SpanId,
        /// Its parent.
        parent: SpanId,
    },
}

impl std::fmt::Display for TraceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceError::NoRoot => write!(f, "trace has no root span"),
            TraceError::MultipleRoots { count } => {
                write!(f, "trace has {count} root spans (expected exactly 1)")
            }
            TraceError::UnknownParent { span } => {
                write!(f, "span {} references an unknown parent", span.0)
            }
            TraceError::NotNested { span, parent } => write!(
                f,
                "span {} escapes the interval of its parent {}",
                span.0, parent.0
            ),
        }
    }
}

impl std::error::Error for TraceError {}

/// The span tree of one distributed query: builder, invariant checker
/// and Chrome trace-event exporter.
#[derive(Clone, Debug)]
pub struct Trace {
    id: TraceId,
    spans: Vec<TraceSpan>,
}

impl Trace {
    /// An empty trace.
    pub fn new(id: TraceId) -> Self {
        Trace {
            id,
            spans: Vec::new(),
        }
    }

    /// The trace id.
    pub fn id(&self) -> TraceId {
        self.id
    }

    fn push(
        &mut self,
        parent: Option<SpanId>,
        name: &str,
        track: Track,
        start: Duration,
        duration: Duration,
    ) -> SpanId {
        let id = SpanId(self.spans.len() as u64);
        self.spans.push(TraceSpan {
            id,
            parent,
            name: name.to_string(),
            track,
            start,
            duration,
            args: Vec::new(),
        });
        id
    }

    /// Add the root span. ([`Trace::validate`] enforces that exactly
    /// one root exists.)
    pub fn add_root(&mut self, name: &str, track: Track, start: Duration, dur: Duration) -> SpanId {
        self.push(None, name, track, start, dur)
    }

    /// Add a child of `parent`.
    pub fn add_child(
        &mut self,
        parent: SpanId,
        name: &str,
        track: Track,
        start: Duration,
        dur: Duration,
    ) -> SpanId {
        self.push(Some(parent), name, track, start, dur)
    }

    /// Attach an argument to a span. Unknown ids are ignored.
    pub fn set_arg(&mut self, span: SpanId, key: &str, value: impl Into<SpanValue>) {
        if let Some(s) = self.spans.get_mut(span.0 as usize) {
            s.args.push((key.to_string(), value.into()));
        }
    }

    /// All spans, in allocation order.
    pub fn spans(&self) -> &[TraceSpan] {
        &self.spans
    }

    /// Look up one span.
    pub fn get(&self, id: SpanId) -> Option<&TraceSpan> {
        self.spans.get(id.0 as usize)
    }

    /// The root span, if present.
    pub fn root(&self) -> Option<&TraceSpan> {
        self.spans.iter().find(|s| s.parent.is_none())
    }

    /// Number of spans.
    pub fn len(&self) -> usize {
        self.spans.len()
    }

    /// True when no spans were added.
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
    }

    /// Latest end offset over all spans (the trace's virtual extent).
    pub fn end(&self) -> Duration {
        self.spans
            .iter()
            .map(TraceSpan::end)
            .max()
            .unwrap_or_default()
    }

    /// Check the structural invariants: exactly one root, every parent
    /// allocated before its child, and every child's interval nested
    /// within its parent's.
    pub fn validate(&self) -> Result<(), TraceError> {
        let roots = self.spans.iter().filter(|s| s.parent.is_none()).count();
        match roots {
            0 => return Err(TraceError::NoRoot),
            1 => {}
            count => return Err(TraceError::MultipleRoots { count }),
        }
        for s in &self.spans {
            let Some(pid) = s.parent else { continue };
            if pid.0 >= s.id.0 {
                return Err(TraceError::UnknownParent { span: s.id });
            }
            let p = &self.spans[pid.0 as usize];
            if s.start < p.start || s.end() > p.end() {
                return Err(TraceError::NotNested {
                    span: s.id,
                    parent: pid,
                });
            }
        }
        Ok(())
    }

    /// The Chrome trace-event document as a JSON value tree (the
    /// pre-serialization form [`Trace::to_chrome_json`] writes out).
    pub fn chrome_value(&self) -> Json {
        let mut events = Vec::with_capacity(self.spans.len() + 8);
        events.push(Json::Obj(vec![
            ("name".into(), Json::Str("process_name".into())),
            ("ph".into(), Json::Str("M".into())),
            ("pid".into(), Json::UInt(1)),
            (
                "args".into(),
                Json::Obj(vec![(
                    "name".into(),
                    Json::Str(format!("stQuery trace {}", self.id.0)),
                )]),
            ),
        ]));
        let mut tracks: Vec<Track> = self.spans.iter().map(|s| s.track).collect();
        tracks.sort_unstable();
        tracks.dedup();
        for t in tracks {
            events.push(Json::Obj(vec![
                ("name".into(), Json::Str("thread_name".into())),
                ("ph".into(), Json::Str("M".into())),
                ("pid".into(), Json::UInt(1)),
                ("tid".into(), Json::UInt(t.tid())),
                (
                    "args".into(),
                    Json::Obj(vec![("name".into(), Json::Str(t.label()))]),
                ),
            ]));
        }
        for s in &self.spans {
            let mut args = vec![("spanId".into(), Json::UInt(s.id.0))];
            if let Some(p) = s.parent {
                args.push(("parent".into(), Json::UInt(p.0)));
            }
            for (k, v) in &s.args {
                args.push((k.clone(), v.to_json()));
            }
            events.push(Json::Obj(vec![
                ("name".into(), Json::Str(s.name.clone())),
                ("cat".into(), Json::Str("query".into())),
                ("ph".into(), Json::Str("X".into())),
                ("ts".into(), Json::Float(micros_f(s.start))),
                ("dur".into(), Json::Float(micros_f(s.duration))),
                ("pid".into(), Json::UInt(1)),
                ("tid".into(), Json::UInt(s.track.tid())),
                ("args".into(), Json::Obj(args)),
            ]));
        }
        Json::Obj(vec![
            ("traceEvents".into(), Json::Arr(events)),
            ("displayTimeUnit".into(), Json::Str("ms".into())),
            (
                "otherData".into(),
                Json::Obj(vec![
                    ("traceId".into(), Json::UInt(self.id.0)),
                    ("virtualClock".into(), Json::Bool(true)),
                ]),
            ),
        ])
    }

    /// Render as Chrome trace-event JSON — load the string in
    /// `chrome://tracing` or Perfetto.
    pub fn to_chrome_json(&self) -> String {
        serde_json::to_string_pretty(&self.chrome_value()).expect("json tree always serializes")
    }
}

/// Microseconds as a float (nanosecond precision survives).
fn micros_f(d: Duration) -> f64 {
    d.as_nanos() as f64 / 1_000.0
}

#[cfg(test)]
mod tests {
    use super::*;

    fn us(n: u64) -> Duration {
        Duration::from_micros(n)
    }

    fn sample() -> Trace {
        let mut t = Trace::new(TraceId(3));
        let root = t.add_root("stQuery", Track::Router, us(0), us(100));
        let cov = t.add_child(root, "covering", Track::Router, us(0), us(5));
        t.set_arg(cov, "ranges", 12i64);
        let exec = t.add_child(root, "shardExec", Track::Shard(2), us(10), us(80));
        t.set_arg(exec, "indexUsed", "hilbertIndex_1_date_1");
        t.add_child(exec, "indexScan", Track::Shard(2), us(10), us(50));
        t.add_child(root, "merge", Track::Router, us(90), us(10));
        t
    }

    #[test]
    fn valid_tree_passes() {
        let t = sample();
        t.validate().unwrap();
        assert_eq!(t.len(), 5);
        assert_eq!(t.root().unwrap().name, "stQuery");
        assert_eq!(t.end(), us(100));
        assert_eq!(t.get(SpanId(1)).unwrap().name, "covering");
    }

    #[test]
    fn missing_root_is_an_error() {
        let t = Trace::new(TraceId(0));
        assert_eq!(t.validate(), Err(TraceError::NoRoot));
    }

    #[test]
    fn second_root_is_an_error() {
        let mut t = sample();
        t.add_root("rogue", Track::Router, us(0), us(1));
        assert_eq!(t.validate(), Err(TraceError::MultipleRoots { count: 2 }));
    }

    #[test]
    fn escaping_child_is_an_error() {
        let mut t = sample();
        let root = SpanId(0);
        let bad = t.add_child(root, "late", Track::Router, us(95), us(10));
        assert_eq!(
            t.validate(),
            Err(TraceError::NotNested {
                span: bad,
                parent: root
            })
        );
    }

    #[test]
    fn forward_parent_reference_is_an_error() {
        let mut t = Trace::new(TraceId(0));
        let root = t.add_root("stQuery", Track::Router, us(0), us(10));
        t.add_child(SpanId(5), "orphan", Track::Router, us(0), us(1));
        let _ = root;
        assert!(matches!(
            t.validate(),
            Err(TraceError::UnknownParent { .. })
        ));
    }

    #[test]
    fn chrome_export_round_trips_through_the_shim_parser() {
        let t = sample();
        let json = t.to_chrome_json();
        let v = serde_json::from_str(&json).expect("chrome trace JSON parses");
        let events = v
            .get("traceEvents")
            .and_then(Json::as_array)
            .expect("traceEvents array");
        let complete: Vec<&Json> = events
            .iter()
            .filter(|e| e.get("ph").and_then(Json::as_str) == Some("X"))
            .collect();
        assert_eq!(complete.len(), t.len());
        // Exactly one X event without a parent arg: the root.
        let roots = complete
            .iter()
            .filter(|e| e.get("args").and_then(|a| a.get("parent")).is_none())
            .count();
        assert_eq!(roots, 1);
        // Thread metadata names every used track.
        let labels: Vec<&str> = events
            .iter()
            .filter(|e| e.get("name").and_then(Json::as_str) == Some("thread_name"))
            .filter_map(|e| e.get("args")?.get("name")?.as_str())
            .collect();
        assert_eq!(labels, vec!["router", "shard 2"]);
        // Span args survive.
        assert!(json.contains("hilbertIndex_1_date_1"));
        assert_eq!(
            v.get("otherData").and_then(|o| o.get("traceId")?.as_u64()),
            Some(3)
        );
    }

    #[test]
    fn zero_width_spans_are_legal() {
        let mut t = Trace::new(TraceId(1));
        let root = t.add_root("stQuery", Track::Router, us(0), us(0));
        t.add_child(root, "routing", Track::Router, us(0), us(0));
        t.validate().unwrap();
    }
}
