//! Latency SLOs with error-budget burn-rate tracking over the
//! timeline's windows.
//!
//! An [`SloPolicy`] states an objective ("99% of queries finish under
//! 2 ms"); the [`SloTracker`] counts good/bad events *exactly* — per
//! observation, not reconstructed from histogram buckets — so the
//! budget arithmetic is not an estimate: the budget consumed over a
//! run equals the sum of per-window violations by construction, and
//! the timeline invariant checks assert exactly that.
//!
//! Burn-rate alerting follows the multi-window pattern (short window
//! catches fast burn, long window filters noise): an alert fires at a
//! window roll iff **both** the short- and long-window burn rates
//! exceed the rule's factor. A burn rate of 1.0 means the error budget
//! is being consumed exactly at the rate that exhausts it at the end
//! of the objective period; 14.4 is the classic "page now" fast burn.

use std::time::Duration;

/// A latency objective: at least `objective` of events must complete
/// within `threshold`.
#[derive(Clone, Debug, PartialEq)]
pub struct SloPolicy {
    /// Human-readable policy name (shows up in exports and alerts).
    pub name: String,
    /// Target good fraction in `(0, 1)`, e.g. `0.99` for a p99 target.
    pub objective: f64,
    /// Latency at or under which an event counts as good.
    pub threshold: Duration,
    /// Multi-window burn alert rules evaluated at every window roll.
    pub rules: Vec<BurnRule>,
}

impl SloPolicy {
    /// A p99-style policy with the standard fast/slow burn rule pair.
    pub fn p99(name: impl Into<String>, threshold: Duration) -> SloPolicy {
        SloPolicy {
            name: name.into(),
            objective: 0.99,
            threshold,
            rules: vec![BurnRule::fast(), BurnRule::slow()],
        }
    }

    /// The error budget fraction, `1 - objective`.
    pub fn budget(&self) -> f64 {
        (1.0 - self.objective).max(f64::EPSILON)
    }
}

/// One multi-window burn-rate alert rule.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct BurnRule {
    /// Number of most-recent windows in the short (fast-reacting) view.
    pub short_windows: usize,
    /// Number of most-recent windows in the long (confirming) view.
    pub long_windows: usize,
    /// Burn-rate factor both views must exceed for the alert to fire.
    pub factor: f64,
}

impl BurnRule {
    /// Page-level fast burn: 14.4× over a short 4-window / long
    /// 48-window pair.
    pub fn fast() -> BurnRule {
        BurnRule {
            short_windows: 4,
            long_windows: 48,
            factor: 14.4,
        }
    }

    /// Ticket-level slow burn: 3× over a 24/96 window pair.
    pub fn slow() -> BurnRule {
        BurnRule {
            short_windows: 24,
            long_windows: 96,
            factor: 3.0,
        }
    }
}

/// Exact good/bad accounting for one sealed timeline window.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WindowSlo {
    /// Absolute window index this row was sealed for.
    pub window: u64,
    /// Events observed in the window.
    pub total: u64,
    /// Events over the latency threshold in the window.
    pub bad: u64,
}

impl WindowSlo {
    /// Fraction of events over threshold (0 when the window is empty).
    pub fn error_rate(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.bad as f64 / self.total as f64
        }
    }
}

/// A burn-rate alert that fired at a window roll.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct BurnAlert {
    /// Window index at whose seal the alert fired.
    pub window: u64,
    /// The rule that tripped.
    pub rule: BurnRule,
    /// Burn rate over the rule's short view at fire time.
    pub short_burn: f64,
    /// Burn rate over the rule's long view at fire time.
    pub long_burn: f64,
}

/// Exact per-event SLO accounting rolled along the timeline's windows.
#[derive(Debug)]
pub struct SloTracker {
    policy: SloPolicy,
    cur_total: u64,
    cur_bad: u64,
    cum_total: u64,
    cum_bad: u64,
    windows: Vec<WindowSlo>,
    alerts: Vec<BurnAlert>,
}

impl SloTracker {
    /// Start tracking a policy.
    pub fn new(policy: SloPolicy) -> SloTracker {
        SloTracker {
            policy,
            cur_total: 0,
            cur_bad: 0,
            cum_total: 0,
            cum_bad: 0,
            windows: Vec::new(),
            alerts: Vec::new(),
        }
    }

    /// The policy being tracked.
    pub fn policy(&self) -> &SloPolicy {
        &self.policy
    }

    /// Record one event's latency against the current (open) window.
    pub fn observe(&mut self, latency: Duration) {
        self.cur_total += 1;
        self.cum_total += 1;
        if latency > self.policy.threshold {
            self.cur_bad += 1;
            self.cum_bad += 1;
        }
    }

    /// Seal the open window as `window`, evaluate every burn rule, and
    /// return the alerts that fired (also retained in
    /// [`alerts`](Self::alerts)).
    pub fn roll(&mut self, window: u64) -> Vec<BurnAlert> {
        self.windows.push(WindowSlo {
            window,
            total: self.cur_total,
            bad: self.cur_bad,
        });
        self.cur_total = 0;
        self.cur_bad = 0;
        let mut fired = Vec::new();
        for rule in self.policy.rules.clone() {
            let short = self.burn_rate(rule.short_windows);
            let long = self.burn_rate(rule.long_windows);
            if short >= rule.factor && long >= rule.factor {
                let alert = BurnAlert {
                    window,
                    rule,
                    short_burn: short,
                    long_burn: long,
                };
                self.alerts.push(alert);
                fired.push(alert);
            }
        }
        fired
    }

    /// Burn rate over the last `n` sealed windows: the observed error
    /// rate divided by the error budget. 1.0 = consuming the budget
    /// exactly at the sustainable rate; 0 when those windows are empty.
    pub fn burn_rate(&self, n: usize) -> f64 {
        let tail = &self.windows[self.windows.len().saturating_sub(n.max(1))..];
        let total: u64 = tail.iter().map(|w| w.total).sum();
        let bad: u64 = tail.iter().map(|w| w.bad).sum();
        if total == 0 {
            0.0
        } else {
            (bad as f64 / total as f64) / self.policy.budget()
        }
    }

    /// Fraction of the total error budget consumed so far:
    /// `bad / (budget × total)`. 1.0 means the run-wide objective is
    /// exactly violated; above 1.0 the SLO is broken.
    pub fn budget_consumed(&self) -> f64 {
        if self.cum_total == 0 {
            0.0
        } else {
            self.cum_bad as f64 / (self.policy.budget() * self.cum_total as f64)
        }
    }

    /// Every sealed window, in roll order.
    pub fn windows(&self) -> &[WindowSlo] {
        &self.windows
    }

    /// Every alert fired so far, in fire order.
    pub fn alerts(&self) -> &[BurnAlert] {
        &self.alerts
    }

    /// Cumulative `(total, bad)` including the open window.
    pub fn totals(&self) -> (u64, u64) {
        (self.cum_total, self.cum_bad)
    }

    /// Events in the open (not yet rolled) window.
    pub fn open_window(&self) -> (u64, u64) {
        (self.cur_total, self.cur_bad)
    }

    /// Check the accounting invariants: the cumulative counters must
    /// equal the sum over sealed windows plus the open window (i.e. the
    /// windows *partition* the observations), and each rolled alert's
    /// recomputed burn pair must still exceed its rule's factor.
    pub fn validate(&self) -> Result<(), String> {
        let sealed_total: u64 = self.windows.iter().map(|w| w.total).sum();
        let sealed_bad: u64 = self.windows.iter().map(|w| w.bad).sum();
        if sealed_total + self.cur_total != self.cum_total {
            return Err(format!(
                "slo {:?}: window totals {} + open {} != cumulative {}",
                self.policy.name, sealed_total, self.cur_total, self.cum_total
            ));
        }
        if sealed_bad + self.cur_bad != self.cum_bad {
            return Err(format!(
                "slo {:?}: window violations {} + open {} != cumulative {}",
                self.policy.name, sealed_bad, self.cur_bad, self.cum_bad
            ));
        }
        for a in &self.alerts {
            if !(a.short_burn >= a.rule.factor && a.long_burn >= a.rule.factor) {
                return Err(format!(
                    "slo {:?}: alert at window {} recorded burns {:.2}/{:.2} below factor {:.2}",
                    self.policy.name, a.window, a.short_burn, a.long_burn, a.rule.factor
                ));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn policy(rules: Vec<BurnRule>) -> SloPolicy {
        SloPolicy {
            name: "test".into(),
            objective: 0.9,
            threshold: Duration::from_millis(1),
            rules,
        }
    }

    #[test]
    fn budget_consumed_is_exact() {
        let mut t = SloTracker::new(policy(vec![]));
        for i in 0..100u64 {
            // 10 of 100 over threshold: error rate 0.1 = the budget.
            let d = if i % 10 == 0 {
                Duration::from_millis(2)
            } else {
                Duration::from_micros(10)
            };
            t.observe(d);
        }
        t.roll(0);
        assert!((t.budget_consumed() - 1.0).abs() < 1e-9);
        assert!((t.burn_rate(1) - 1.0).abs() < 1e-9);
        t.validate().unwrap();
    }

    #[test]
    fn alert_fires_iff_both_views_exceed() {
        let rule = BurnRule {
            short_windows: 1,
            long_windows: 4,
            factor: 2.0,
        };
        let mut t = SloTracker::new(policy(vec![rule]));
        // Three clean windows.
        for w in 0..3u64 {
            for _ in 0..10 {
                t.observe(Duration::from_micros(1));
            }
            assert!(t.roll(w).is_empty());
        }
        // One terrible window: short burn = (10/10)/0.1 = 10 ≥ 2, but
        // long view = (10/40)/0.1 = 2.5 ≥ 2 → fires.
        for _ in 0..10 {
            t.observe(Duration::from_millis(5));
        }
        let fired = t.roll(3);
        assert_eq!(fired.len(), 1);
        assert!(fired[0].short_burn >= 2.0 && fired[0].long_burn >= 2.0);

        // Same spike diluted by a much longer clean history: short view
        // still burns but the long view stays under the factor → quiet.
        let mut t2 = SloTracker::new(policy(vec![BurnRule {
            short_windows: 1,
            long_windows: 8,
            factor: 2.0,
        }]));
        for w in 0..7u64 {
            for _ in 0..100 {
                t2.observe(Duration::from_micros(1));
            }
            assert!(t2.roll(w).is_empty());
        }
        for _ in 0..10 {
            t2.observe(Duration::from_millis(5));
        }
        // long = (10/710)/0.1 ≈ 0.14 < 2 even though short = 10.
        assert!(t2.roll(7).is_empty());
        assert!(t2.burn_rate(1) >= 2.0);
        t2.validate().unwrap();
    }

    #[test]
    fn validate_catches_tampering() {
        let mut t = SloTracker::new(policy(vec![]));
        t.observe(Duration::from_millis(5));
        t.roll(0);
        t.validate().unwrap();
        t.windows[0].bad = 7;
        assert!(t.validate().is_err());
    }

    #[test]
    fn empty_windows_burn_nothing() {
        let mut t = SloTracker::new(SloPolicy::p99("q", Duration::from_millis(1)));
        t.roll(0);
        t.roll(1);
        assert_eq!(t.burn_rate(2), 0.0);
        assert_eq!(t.budget_consumed(), 0.0);
        assert!(t.alerts().is_empty());
        t.validate().unwrap();
    }
}
