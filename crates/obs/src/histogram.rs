//! HDR-style log-linear latency histogram.
//!
//! Values (durations, recorded as nanoseconds) are bucketed into
//! logarithmic tiers of [`SUB_BUCKETS`] linear sub-buckets each, the
//! layout HdrHistogram popularized: constant *relative* error (here
//! ≤ 1/32 ≈ 3.1%) across the whole trackable range instead of constant
//! absolute error. Recording is a single relaxed `fetch_add` on one
//! bucket plus min/max maintenance — no locks, safe to hammer from
//! every shard thread of the router's fan-out.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Linear sub-buckets per logarithmic tier (2^5 → ≤ 3.1% relative error).
pub const SUB_BUCKETS: u64 = 32;
const SUB_BITS: u32 = 5;

/// Highest trackable value: ~18.3 minutes in nanoseconds. Larger
/// recordings clamp into the last bucket and count as saturated.
pub const MAX_TRACKABLE_NANOS: u64 = 1 << 40;

/// Tiers: values below `SUB_BUCKETS` are identity-mapped (tier 0);
/// every further power of two above `2^SUB_BITS` adds one tier.
const TIERS: usize = (40 - SUB_BITS as usize) + 1;
const BUCKETS: usize = TIERS * SUB_BUCKETS as usize;

/// A fixed-footprint latency histogram with lock-free recording.
pub struct Histogram {
    buckets: Box<[AtomicU64; BUCKETS]>,
    count: AtomicU64,
    sum_nanos: AtomicU64,
    max_nanos: AtomicU64,
    min_nanos: AtomicU64,
    saturated: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Histogram {
            buckets: Box::new([const { AtomicU64::new(0) }; BUCKETS]),
            count: AtomicU64::new(0),
            sum_nanos: AtomicU64::new(0),
            max_nanos: AtomicU64::new(0),
            min_nanos: AtomicU64::new(u64::MAX),
            saturated: AtomicU64::new(0),
        }
    }

    /// Record one duration. Values above [`MAX_TRACKABLE_NANOS`] clamp
    /// into the top bucket (and count in `saturated`); the true sum and
    /// max still reflect the unclamped value.
    pub fn record(&self, d: Duration) {
        let nanos = u64::try_from(d.as_nanos()).unwrap_or(u64::MAX);
        let clamped = if nanos >= MAX_TRACKABLE_NANOS {
            self.saturated.fetch_add(1, Ordering::Relaxed);
            MAX_TRACKABLE_NANOS - 1
        } else {
            nanos
        };
        self.buckets[bucket_index(clamped)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_nanos.fetch_add(nanos, Ordering::Relaxed);
        self.max_nanos.fetch_max(nanos, Ordering::Relaxed);
        self.min_nanos.fetch_min(nanos, Ordering::Relaxed);
    }

    /// Record one dimensionless value (a count, a size) by reusing the
    /// nanosecond bucket lattice: a value of `n` lands where a duration
    /// of `n` ns would. Readouts come back as [`Duration`]s whose
    /// `as_nanos()` is the value — see
    /// [`HistogramSnapshot::value_percentiles`].
    pub fn record_value(&self, v: u64) {
        self.record(Duration::from_nanos(v));
    }

    /// Recordings so far.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.count() == 0
    }

    /// Recordings that exceeded [`MAX_TRACKABLE_NANOS`].
    pub fn saturated(&self) -> u64 {
        self.saturated.load(Ordering::Relaxed)
    }

    /// Largest recorded value (zero when empty).
    pub fn max(&self) -> Duration {
        Duration::from_nanos(self.max_nanos.load(Ordering::Relaxed))
    }

    /// Smallest recorded value (zero when empty).
    pub fn min(&self) -> Duration {
        let v = self.min_nanos.load(Ordering::Relaxed);
        Duration::from_nanos(if v == u64::MAX { 0 } else { v })
    }

    /// Arithmetic mean of recordings (zero when empty).
    pub fn mean(&self) -> Duration {
        let n = self.count();
        if n == 0 {
            return Duration::ZERO;
        }
        Duration::from_nanos(self.sum_nanos.load(Ordering::Relaxed) / n)
    }

    /// The value at quantile `q` (clamped to `[0, 1]`); zero when
    /// empty. Returns the matching bucket's midpoint, clamped into the
    /// observed `[min, max]` so a single sample reports exactly.
    pub fn percentile(&self, q: f64) -> Duration {
        let total = self.count();
        if total == 0 {
            return Duration::ZERO;
        }
        let q = q.clamp(0.0, 1.0);
        // 1-based rank of the sample the quantile lands on.
        let rank = ((q * total as f64).ceil() as u64).clamp(1, total);
        let mut seen = 0u64;
        for (idx, b) in self.buckets.iter().enumerate() {
            seen += b.load(Ordering::Relaxed);
            if seen >= rank {
                let mid = bucket_low(idx) + bucket_width(idx) / 2;
                let lo = self.min_nanos.load(Ordering::Relaxed);
                let hi = self.max_nanos.load(Ordering::Relaxed);
                // `lo > hi` only transiently, mid-record on another
                // thread; report the raw midpoint then.
                let v = if lo <= hi { mid.clamp(lo, hi) } else { mid };
                return Duration::from_nanos(v);
            }
        }
        self.max()
    }

    /// Fold another histogram's recordings into this one.
    pub fn merge(&self, other: &Histogram) {
        for (mine, theirs) in self.buckets.iter().zip(other.buckets.iter()) {
            let v = theirs.load(Ordering::Relaxed);
            if v > 0 {
                mine.fetch_add(v, Ordering::Relaxed);
            }
        }
        self.count
            .fetch_add(other.count.load(Ordering::Relaxed), Ordering::Relaxed);
        self.sum_nanos
            .fetch_add(other.sum_nanos.load(Ordering::Relaxed), Ordering::Relaxed);
        self.saturated
            .fetch_add(other.saturated.load(Ordering::Relaxed), Ordering::Relaxed);
        self.max_nanos
            .fetch_max(other.max_nanos.load(Ordering::Relaxed), Ordering::Relaxed);
        self.min_nanos
            .fetch_min(other.min_nanos.load(Ordering::Relaxed), Ordering::Relaxed);
    }

    /// Reset to empty.
    pub fn reset(&self) {
        for b in self.buckets.iter() {
            b.store(0, Ordering::Relaxed);
        }
        self.count.store(0, Ordering::Relaxed);
        self.sum_nanos.store(0, Ordering::Relaxed);
        self.max_nanos.store(0, Ordering::Relaxed);
        self.min_nanos.store(u64::MAX, Ordering::Relaxed);
        self.saturated.store(0, Ordering::Relaxed);
    }

    /// A point-in-time summary (the percentile set the evaluation
    /// section and `BENCH_*.json` report).
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            count: self.count(),
            saturated: self.saturated(),
            p50: self.percentile(0.50),
            p95: self.percentile(0.95),
            p99: self.percentile(0.99),
            mean: self.mean(),
            min: self.min(),
            max: self.max(),
            sum: Duration::from_nanos(self.sum_nanos.load(Ordering::Relaxed)),
        }
    }

    /// A full cumulative dump of the bucket lattice — the plain-data
    /// form the telemetry timeline samples at window boundaries so
    /// per-window deltas can be computed by subtraction
    /// ([`HistogramCounts::delta`]).
    pub fn counts(&self) -> HistogramCounts {
        HistogramCounts {
            buckets: self
                .buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
            count: self.count(),
            sum_nanos: self.sum_nanos.load(Ordering::Relaxed),
            saturated: self.saturated(),
            min_nanos: self.min_nanos.load(Ordering::Relaxed),
            max_nanos: self.max_nanos.load(Ordering::Relaxed),
        }
    }
}

/// A plain-data cumulative dump of a [`Histogram`]: the bucket counts
/// plus the scalar accumulators, detached from the atomics. Two dumps
/// of the same histogram taken at different instants subtract into the
/// *window delta* of the recordings in between ([`Self::delta`]);
/// window deltas merge back into the cumulative histogram exactly
/// ([`Self::merge`]) because everything is bucket-wise addition over
/// one shared lattice.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HistogramCounts {
    /// Per-bucket recording counts, in lattice order.
    pub buckets: Vec<u64>,
    /// Total recordings.
    pub count: u64,
    /// Sum of all recorded values in nanoseconds (unclamped).
    pub sum_nanos: u64,
    /// Recordings clamped at [`MAX_TRACKABLE_NANOS`].
    pub saturated: u64,
    /// Smallest recorded value (`u64::MAX` when empty). For a window
    /// delta this is a *bucket-resolution estimate*: the low edge of
    /// the first bucket the window touched.
    pub min_nanos: u64,
    /// Largest recorded value (0 when empty). For a window delta this
    /// is a bucket-resolution estimate (high edge of the last touched
    /// bucket, capped by the cumulative max).
    pub max_nanos: u64,
}

impl Default for HistogramCounts {
    fn default() -> Self {
        Self::empty()
    }
}

impl HistogramCounts {
    /// A dump with nothing recorded.
    pub fn empty() -> Self {
        HistogramCounts {
            buckets: vec![0; BUCKETS],
            count: 0,
            sum_nanos: 0,
            saturated: 0,
            min_nanos: u64::MAX,
            max_nanos: 0,
        }
    }

    /// True when nothing is recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// The recordings that happened between `earlier` and `self`
    /// (both cumulative dumps of the *same* histogram, `earlier` taken
    /// first). Buckets, count, sum and saturation subtract exactly;
    /// min/max are re-estimated from the delta's touched buckets since
    /// the cumulative extremes don't decompose per window.
    pub fn delta(&self, earlier: &HistogramCounts) -> HistogramCounts {
        let buckets: Vec<u64> = self
            .buckets
            .iter()
            .zip(earlier.buckets.iter())
            .map(|(now, then)| now.saturating_sub(*then))
            .collect();
        let count = self.count.saturating_sub(earlier.count);
        let (min_nanos, max_nanos) = if count == 0 {
            (u64::MAX, 0)
        } else {
            let first = buckets.iter().position(|&b| b > 0).unwrap_or(0);
            let last = buckets.iter().rposition(|&b| b > 0).unwrap_or(0);
            // The cumulative min bounds every sample from below, so the
            // window min lies in [max(cum_min, bucket_low(first)), …].
            (
                bucket_low(first).max(self.min_nanos),
                (bucket_low(last) + bucket_width(last) - 1).min(self.max_nanos),
            )
        };
        HistogramCounts {
            buckets,
            count,
            sum_nanos: self.sum_nanos.saturating_sub(earlier.sum_nanos),
            saturated: self.saturated.saturating_sub(earlier.saturated),
            min_nanos,
            max_nanos,
        }
    }

    /// Fold another dump (typically a window delta) into this one.
    pub fn merge(&mut self, other: &HistogramCounts) {
        for (mine, theirs) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *mine += theirs;
        }
        self.count += other.count;
        self.sum_nanos += other.sum_nanos;
        self.saturated += other.saturated;
        self.min_nanos = self.min_nanos.min(other.min_nanos);
        self.max_nanos = self.max_nanos.max(other.max_nanos);
    }

    /// The value at quantile `q`, same rank-and-midpoint readout as
    /// [`Histogram::percentile`] (zero when empty).
    pub fn percentile(&self, q: f64) -> Duration {
        if self.count == 0 {
            return Duration::ZERO;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (idx, &b) in self.buckets.iter().enumerate() {
            seen += b;
            if seen >= rank {
                let mid = bucket_low(idx) + bucket_width(idx) / 2;
                let v = if self.min_nanos <= self.max_nanos {
                    mid.clamp(self.min_nanos, self.max_nanos)
                } else {
                    mid
                };
                return Duration::from_nanos(v);
            }
        }
        Duration::from_nanos(if self.max_nanos == 0 {
            0
        } else {
            self.max_nanos
        })
    }

    /// Arithmetic mean of the recordings (zero when empty).
    pub fn mean(&self) -> Duration {
        if self.count == 0 {
            return Duration::ZERO;
        }
        Duration::from_nanos(self.sum_nanos / self.count)
    }

    /// Summary in the same shape [`Histogram::snapshot`] reports.
    pub fn summary(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            count: self.count,
            saturated: self.saturated,
            p50: self.percentile(0.50),
            p95: self.percentile(0.95),
            p99: self.percentile(0.99),
            mean: self.mean(),
            min: Duration::from_nanos(if self.min_nanos == u64::MAX {
                0
            } else {
                self.min_nanos
            }),
            max: Duration::from_nanos(self.max_nanos),
            sum: Duration::from_nanos(self.sum_nanos),
        }
    }
}

/// Summary statistics of a [`Histogram`] at one instant.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Recordings.
    pub count: u64,
    /// Recordings clamped at the trackable maximum.
    pub saturated: u64,
    /// Median.
    pub p50: Duration,
    /// 95th percentile.
    pub p95: Duration,
    /// 99th percentile.
    pub p99: Duration,
    /// Arithmetic mean.
    pub mean: Duration,
    /// Smallest recording.
    pub min: Duration,
    /// Largest recording.
    pub max: Duration,
    /// Sum of all recordings.
    pub sum: Duration,
}

impl HistogramSnapshot {
    /// Read a value histogram (recorded via
    /// [`Histogram::record_value`]) back as dimensionless numbers:
    /// `(p50, p95, p99, mean, max)`.
    pub fn value_percentiles(&self) -> (u64, u64, u64, u64, u64) {
        let n = |d: Duration| u64::try_from(d.as_nanos()).unwrap_or(u64::MAX);
        (
            n(self.p50),
            n(self.p95),
            n(self.p99),
            n(self.mean),
            n(self.max),
        )
    }
}

/// Bucket index for a clamped nanosecond value.
fn bucket_index(nanos: u64) -> usize {
    if nanos < SUB_BUCKETS {
        return nanos as usize;
    }
    let msb = 63 - nanos.leading_zeros();
    let tier = (msb - SUB_BITS + 1) as usize;
    let sub = ((nanos >> (msb - SUB_BITS)) & (SUB_BUCKETS - 1)) as usize;
    tier * SUB_BUCKETS as usize + sub
}

/// Lowest value mapping into bucket `idx`.
fn bucket_low(idx: usize) -> u64 {
    let tier = idx as u64 / SUB_BUCKETS;
    let sub = idx as u64 % SUB_BUCKETS;
    if tier == 0 {
        sub
    } else {
        (SUB_BUCKETS + sub) << (tier - 1)
    }
}

/// Width of bucket `idx` (number of distinct values mapping into it).
fn bucket_width(idx: usize) -> u64 {
    let tier = idx as u64 / SUB_BUCKETS;
    if tier == 0 {
        1
    } else {
        1 << (tier - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_reports_zeroes() {
        let h = Histogram::new();
        assert!(h.is_empty());
        assert_eq!(h.count(), 0);
        assert_eq!(h.percentile(0.5), Duration::ZERO);
        assert_eq!(h.percentile(0.99), Duration::ZERO);
        assert_eq!(h.mean(), Duration::ZERO);
        assert_eq!(h.min(), Duration::ZERO);
        assert_eq!(h.max(), Duration::ZERO);
        let s = h.snapshot();
        assert_eq!(s.count, 0);
        assert_eq!(s.p50, Duration::ZERO);
    }

    #[test]
    fn single_sample_is_every_percentile() {
        let h = Histogram::new();
        let v = Duration::from_micros(137);
        h.record(v);
        // Midpoint clamps into [min, max] = [v, v]: exact.
        for q in [0.0, 0.5, 0.95, 0.99, 1.0] {
            assert_eq!(h.percentile(q), v, "q={q}");
        }
        assert_eq!(h.mean(), v);
        assert_eq!(h.min(), v);
        assert_eq!(h.max(), v);
        assert_eq!(h.count(), 1);
    }

    #[test]
    fn percentiles_are_monotone_and_accurate() {
        let h = Histogram::new();
        for us in 1..=1_000u64 {
            h.record(Duration::from_micros(us));
        }
        let p50 = h.percentile(0.50).as_nanos() as f64;
        let p95 = h.percentile(0.95).as_nanos() as f64;
        let p99 = h.percentile(0.99).as_nanos() as f64;
        assert!(p50 <= p95 && p95 <= p99);
        // Log-linear layout guarantees ≤ 1/32 relative error, plus one
        // sub-bucket of rank rounding slack.
        assert!((p50 - 500_000.0).abs() / 500_000.0 < 0.10, "p50={p50}");
        assert!((p95 - 950_000.0).abs() / 950_000.0 < 0.10, "p95={p95}");
        assert!((p99 - 990_000.0).abs() / 990_000.0 < 0.10, "p99={p99}");
    }

    #[test]
    fn saturation_clamps_but_keeps_true_max() {
        let h = Histogram::new();
        let huge = Duration::from_secs(3_600); // over the ~18 min limit
        h.record(huge);
        h.record(Duration::from_millis(1));
        assert_eq!(h.saturated(), 1);
        assert_eq!(h.count(), 2);
        assert_eq!(h.max(), huge, "max is unclamped");
        // The saturated sample still lands in the top bucket, so the
        // tail percentile reports the trackable ceiling, not garbage.
        let p99 = h.percentile(0.99).as_nanos() as u64;
        assert!(p99 >= MAX_TRACKABLE_NANOS / 2);
        assert!(u128::from(p99) <= huge.as_nanos());
    }

    #[test]
    fn identity_range_is_exact() {
        // Values below SUB_BUCKETS ns map 1:1 to buckets.
        for v in 0..SUB_BUCKETS {
            let idx = bucket_index(v);
            assert_eq!(idx as u64, v);
            assert_eq!(bucket_low(idx), v);
            assert_eq!(bucket_width(idx), 1);
        }
    }

    #[test]
    fn bucket_mapping_is_monotone_and_tight() {
        let values: std::collections::BTreeSet<u64> = (0..40)
            .flat_map(|exp| [0u64, 1, 3].map(|off| (1u64 << exp) + off))
            .filter(|&v| v < MAX_TRACKABLE_NANOS)
            .collect();
        let mut prev = 0usize;
        for v in values {
            let idx = bucket_index(v);
            assert!(idx >= prev, "bucket index must not decrease at {v}");
            prev = idx;
            let lo = bucket_low(idx);
            let w = bucket_width(idx);
            assert!(lo <= v && v < lo + w, "v={v} idx={idx} lo={lo} w={w}");
        }
    }

    #[test]
    fn merge_combines_counts_and_extremes() {
        let a = Histogram::new();
        let b = Histogram::new();
        a.record(Duration::from_micros(10));
        b.record(Duration::from_micros(1_000));
        b.record(Duration::from_secs(7_200)); // saturates
        a.merge(&b);
        assert_eq!(a.count(), 3);
        assert_eq!(a.saturated(), 1);
        assert_eq!(a.min(), Duration::from_micros(10));
        assert_eq!(a.max(), Duration::from_secs(7_200));
    }

    #[test]
    fn merged_percentiles_match_recording_the_union() {
        // Per-shard histograms merged into a cluster-wide one must
        // report the same percentiles as one histogram fed the union
        // of samples: merge is bucket-wise addition over identical
        // bucketing, so the equality is exact, not approximate.
        let a = Histogram::new();
        let b = Histogram::new();
        let union = Histogram::new();
        let samples_a: Vec<u64> = (1..=60).map(|i| i * 37).collect(); // 37us..2.2ms
        let samples_b: Vec<u64> = (1..=40).map(|i| i * i * 11 + 5).collect(); // 16us..17.6ms
        for &us in &samples_a {
            a.record(Duration::from_micros(us));
            union.record(Duration::from_micros(us));
        }
        for &us in &samples_b {
            b.record(Duration::from_micros(us));
            union.record(Duration::from_micros(us));
        }
        a.merge(&b);
        for p in [0.5, 0.9, 0.95, 0.99, 1.0] {
            assert_eq!(a.percentile(p), union.percentile(p), "p{}", p * 100.0);
        }
        assert_eq!(a.count(), union.count());
        assert_eq!(a.mean(), union.mean());
        assert_eq!(a.min(), union.min());
        assert_eq!(a.max(), union.max());
    }

    #[test]
    fn reset_clears_everything() {
        let h = Histogram::new();
        h.record(Duration::from_millis(5));
        h.record(Duration::from_secs(4_000));
        h.reset();
        assert!(h.is_empty());
        assert_eq!(h.saturated(), 0);
        assert_eq!(h.max(), Duration::ZERO);
        assert_eq!(h.percentile(0.5), Duration::ZERO);
        // And it keeps working after the reset.
        h.record(Duration::from_millis(2));
        assert_eq!(h.count(), 1);
    }

    #[test]
    fn concurrent_recording_loses_nothing() {
        let h = std::sync::Arc::new(Histogram::new());
        let threads: Vec<_> = (0..4)
            .map(|t| {
                let h = h.clone();
                std::thread::spawn(move || {
                    for i in 0..1_000u64 {
                        h.record(Duration::from_nanos(i * (t + 1)));
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(h.count(), 4_000);
    }
}
