//! Exporters for metrics and timelines: Prometheus text exposition,
//! schema-versioned `sts-timeline/1` JSON, Perfetto counter tracks
//! with event overlays, and folded-stacks flamegraph output.
//!
//! All JSON leaving this module has its object keys in deterministic
//! sorted order ([`sort_json_keys`]) so committed artifacts diff
//! cleanly across runs — the registry is already `BTreeMap`-backed,
//! and the canonicalizer makes the guarantee recursive and explicit.

use crate::histogram::HistogramCounts;
use crate::registry::RegistrySnapshot;
use crate::timeline::Timeline;
use serde::Json;
use std::collections::BTreeMap;
use std::time::Duration;

/// Schema tag of the timeline JSON export.
pub const TIMELINE_SCHEMA: &str = "sts-timeline/1";

// ---------------------------------------------------------------- text

/// Sanitize a dotted metric name into a Prometheus metric name:
/// `query.covering_ranges` → `sts_query_covering_ranges`.
pub fn prometheus_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 4);
    out.push_str("sts_");
    for c in name.chars() {
        if c.is_ascii_alphanumeric() {
            out.push(c);
        } else {
            out.push('_');
        }
    }
    out
}

fn prometheus_labels(labels: &[(&str, &str)]) -> String {
    if labels.is_empty() {
        return String::new();
    }
    let body: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("{k}=\"{}\"", v.replace('\\', "\\\\").replace('"', "\\\"")))
        .collect();
    format!("{{{}}}", body.join(","))
}

fn secs(d: Duration) -> f64 {
    d.as_secs_f64()
}

/// Render a registry snapshot in the Prometheus text exposition
/// format. Counters become `<name>_total`; histograms are rendered as
/// summaries with `quantile` labels plus `_sum`/`_count`, in seconds.
/// `labels` (e.g. `approach`/`curve`) are attached to every sample.
pub fn prometheus_text(snap: &RegistrySnapshot, labels: &[(&str, &str)]) -> String {
    let base = prometheus_labels(labels);
    let mut out = String::new();
    for (name, v) in &snap.counters {
        let m = prometheus_name(name);
        out.push_str(&format!("# TYPE {m}_total counter\n"));
        out.push_str(&format!("{m}_total{base} {v}\n"));
    }
    for (name, v) in &snap.gauges {
        let m = prometheus_name(name);
        out.push_str(&format!("# TYPE {m} gauge\n"));
        out.push_str(&format!("{m}{base} {v}\n"));
    }
    for (name, h) in &snap.histograms {
        let m = prometheus_name(name);
        out.push_str(&format!("# TYPE {m} summary\n"));
        for (q, d) in [("0.5", h.p50), ("0.95", h.p95), ("0.99", h.p99)] {
            let mut with_q: Vec<(&str, &str)> = labels.to_vec();
            with_q.push(("quantile", q));
            out.push_str(&format!("{m}{} {}\n", prometheus_labels(&with_q), secs(d)));
        }
        out.push_str(&format!("{m}_sum{base} {}\n", secs(h.sum)));
        out.push_str(&format!("{m}_count{base} {}\n", h.count));
    }
    out
}

// ---------------------------------------------------------------- json

/// Recursively sort every JSON object's keys (stable on duplicates) so
/// serialized artifacts are byte-diffable across runs regardless of
/// insertion order.
pub fn sort_json_keys(v: Json) -> Json {
    match v {
        Json::Obj(mut entries) => {
            entries.sort_by(|a, b| a.0.cmp(&b.0));
            Json::Obj(
                entries
                    .into_iter()
                    .map(|(k, v)| (k, sort_json_keys(v)))
                    .collect(),
            )
        }
        Json::Arr(items) => Json::Arr(items.into_iter().map(sort_json_keys).collect()),
        other => other,
    }
}

fn nanos_u64(d: Duration) -> u64 {
    u64::try_from(d.as_nanos()).unwrap_or(u64::MAX)
}

fn hist_json(h: &HistogramCounts) -> Json {
    let s = h.summary();
    Json::Obj(vec![
        ("count".into(), Json::UInt(h.count)),
        ("maxNanos".into(), Json::UInt(nanos_u64(s.max))),
        ("meanNanos".into(), Json::UInt(nanos_u64(s.mean))),
        ("minNanos".into(), Json::UInt(nanos_u64(s.min))),
        ("p50Nanos".into(), Json::UInt(nanos_u64(s.p50))),
        ("p95Nanos".into(), Json::UInt(nanos_u64(s.p95))),
        ("p99Nanos".into(), Json::UInt(nanos_u64(s.p99))),
        ("saturated".into(), Json::UInt(h.saturated)),
        ("sumNanos".into(), Json::UInt(h.sum_nanos)),
    ])
}

/// Render a timeline as schema-versioned `sts-timeline/1` JSON with
/// sorted keys. `meta` labels (approach, curve, dataset…) land under
/// `"meta"`.
pub fn timeline_json(tl: &Timeline, meta: &[(&str, &str)]) -> Json {
    let mut windows = Vec::new();
    for w in tl.windows() {
        let counters: Vec<(String, Json)> = w
            .counters
            .iter()
            .map(|(n, v)| (n.clone(), Json::UInt(*v)))
            .collect();
        let hists: Vec<(String, Json)> = w
            .histograms
            .iter()
            .map(|(n, h)| (n.clone(), hist_json(h)))
            .collect();
        let events: Vec<Json> = w
            .events
            .iter()
            .map(|e| {
                Json::Obj(vec![
                    ("atNanos".into(), Json::UInt(nanos_u64(e.at))),
                    ("detail".into(), Json::Str(e.detail.clone())),
                    ("kind".into(), Json::Str(e.kind.clone())),
                ])
            })
            .collect();
        let mut entries = vec![
            ("counters".into(), Json::Obj(counters)),
            ("endNanos".into(), Json::UInt(nanos_u64(w.end))),
            ("events".into(), Json::Arr(events)),
            ("histograms".into(), Json::Obj(hists)),
            ("index".into(), Json::UInt(w.index)),
            ("startNanos".into(), Json::UInt(nanos_u64(w.start))),
        ];
        if let Some(s) = &w.slo {
            entries.push((
                "slo".into(),
                Json::Obj(vec![
                    ("bad".into(), Json::UInt(s.bad)),
                    ("total".into(), Json::UInt(s.total)),
                ]),
            ));
        }
        if !w.alerts.is_empty() {
            entries.push((
                "alerts".into(),
                Json::Arr(w.alerts.iter().map(alert_json).collect()),
            ));
        }
        windows.push(Json::Obj(entries));
    }

    let mut root = vec![
        (
            "config".into(),
            Json::Obj(vec![
                ("capacity".into(), Json::UInt(tl.config().capacity as u64)),
                (
                    "windowNanos".into(),
                    Json::UInt(nanos_u64(tl.config().window)),
                ),
            ]),
        ),
        ("droppedWindows".into(), Json::UInt(tl.dropped())),
        ("finished".into(), Json::Bool(tl.is_finished())),
        (
            "meta".into(),
            Json::Obj(
                meta.iter()
                    .map(|(k, v)| ((*k).to_string(), Json::Str((*v).to_string())))
                    .collect(),
            ),
        ),
        ("runEndNanos".into(), Json::UInt(nanos_u64(tl.now()))),
        ("schema".into(), Json::Str(TIMELINE_SCHEMA.into())),
        ("windows".into(), Json::Arr(windows)),
    ];
    if let Some(slo) = tl.slo() {
        let (total, bad) = slo.totals();
        root.push((
            "slo".into(),
            Json::Obj(vec![
                (
                    "alerts".into(),
                    Json::Arr(slo.alerts().iter().map(alert_json).collect()),
                ),
                ("budgetConsumed".into(), Json::Float(slo.budget_consumed())),
                ("name".into(), Json::Str(slo.policy().name.clone())),
                ("objective".into(), Json::Float(slo.policy().objective)),
                (
                    "thresholdNanos".into(),
                    Json::UInt(nanos_u64(slo.policy().threshold)),
                ),
                ("totalEvents".into(), Json::UInt(total)),
                ("totalViolations".into(), Json::UInt(bad)),
            ]),
        ));
    }
    sort_json_keys(Json::Obj(root))
}

fn alert_json(a: &crate::slo::BurnAlert) -> Json {
    Json::Obj(vec![
        ("factor".into(), Json::Float(a.rule.factor)),
        ("longBurn".into(), Json::Float(a.long_burn)),
        ("longWindows".into(), Json::UInt(a.rule.long_windows as u64)),
        ("shortBurn".into(), Json::Float(a.short_burn)),
        (
            "shortWindows".into(),
            Json::UInt(a.rule.short_windows as u64),
        ),
        ("window".into(), Json::UInt(a.window)),
    ])
}

/// Validate a parsed `sts-timeline/1` document: schema tag, window
/// array shape, consecutive indices starting at `droppedWindows`,
/// coherent window bounds, and SLO accounting (budget consumed must
/// equal the sum of per-window violations over the budget-weighted
/// total). `obs-report --timeline` exits non-zero when this fails.
pub fn validate_timeline_json(v: &Json) -> Result<(), String> {
    if v.get("schema").and_then(Json::as_str) != Some(TIMELINE_SCHEMA) {
        return Err(format!("schema tag != {TIMELINE_SCHEMA:?}"));
    }
    let dropped = v
        .get("droppedWindows")
        .and_then(Json::as_u64)
        .ok_or("missing droppedWindows")?;
    let windows = v
        .get("windows")
        .and_then(Json::as_array)
        .ok_or("windows is not an array")?;
    let mut prev_end = None::<u64>;
    let mut win_total = 0u64;
    let mut win_bad = 0u64;
    for (expect, w) in (dropped..).zip(windows.iter()) {
        let idx = w
            .get("index")
            .and_then(Json::as_u64)
            .ok_or("window without index")?;
        if idx != expect {
            return Err(format!("window index {idx} where {expect} expected"));
        }
        let start = w
            .get("startNanos")
            .and_then(Json::as_u64)
            .ok_or("window without startNanos")?;
        let end = w
            .get("endNanos")
            .and_then(Json::as_u64)
            .ok_or("window without endNanos")?;
        if end < start {
            return Err(format!("window {idx}: end {end} < start {start}"));
        }
        if let Some(p) = prev_end {
            if start != p {
                return Err(format!("window {idx}: start {start} != previous end {p}"));
            }
        }
        prev_end = Some(end);
        for e in w.get("events").and_then(Json::as_array).unwrap_or(&[]) {
            let at = e
                .get("atNanos")
                .and_then(Json::as_u64)
                .ok_or("event without atNanos")?;
            if at < start || at > end {
                return Err(format!(
                    "window {idx}: event at {at} outside [{start}, {end}]"
                ));
            }
        }
        if let Some(s) = w.get("slo") {
            win_total += s
                .get("total")
                .and_then(Json::as_u64)
                .ok_or("slo row without total")?;
            win_bad += s
                .get("bad")
                .and_then(Json::as_u64)
                .ok_or("slo row without bad")?;
        }
    }
    if let Some(slo) = v.get("slo") {
        let total = slo
            .get("totalEvents")
            .and_then(Json::as_u64)
            .ok_or("slo without totalEvents")?;
        let bad = slo
            .get("totalViolations")
            .and_then(Json::as_u64)
            .ok_or("slo without totalViolations")?;
        // Exact only when no window was dropped from the ring.
        if dropped == 0 && (total != win_total || bad != win_bad) {
            return Err(format!(
                "slo accounting: cumulative {bad}/{total} != per-window sums {win_bad}/{win_total}"
            ));
        }
        let objective = slo
            .get("objective")
            .and_then(Json::as_f64)
            .ok_or("slo without objective")?;
        let consumed = slo
            .get("budgetConsumed")
            .and_then(Json::as_f64)
            .ok_or("slo without budgetConsumed")?;
        let budget = (1.0 - objective).max(f64::EPSILON);
        let expect = if total == 0 {
            0.0
        } else {
            bad as f64 / (budget * total as f64)
        };
        if (consumed - expect).abs() > 1e-6 * expect.max(1.0) {
            return Err(format!(
                "budgetConsumed {consumed} != violations/(budget*total) = {expect}"
            ));
        }
    }
    Ok(())
}

// ------------------------------------------------------------ perfetto

fn micros_f(d: Duration) -> f64 {
    d.as_nanos() as f64 / 1_000.0
}

/// Render a timeline as Chrome trace-event JSON for Perfetto: one
/// counter track per histogram metric (p50/p95/p99 in µs, sampled at
/// each window start), one counter track per counter metric (the
/// per-window delta), and instant events overlaying every timeline
/// annotation (balancer splits/migrations, batch commits) and burn
/// alert on the same virtual-clock axis.
pub fn perfetto_timeline(tl: &Timeline, label: &str) -> Json {
    let mut events = Vec::new();
    events.push(Json::Obj(vec![
        (
            "args".into(),
            Json::Obj(vec![(
                "name".into(),
                Json::Str(format!("sts timeline: {label}")),
            )]),
        ),
        ("name".into(), Json::Str("process_name".into())),
        ("ph".into(), Json::Str("M".into())),
        ("pid".into(), Json::UInt(1)),
    ]));
    for w in tl.windows() {
        let ts = micros_f(w.start);
        for (name, h) in &w.histograms {
            let s = h.summary();
            events.push(Json::Obj(vec![
                (
                    "args".into(),
                    Json::Obj(vec![
                        ("p50_us".into(), Json::Float(micros_f(s.p50))),
                        ("p95_us".into(), Json::Float(micros_f(s.p95))),
                        ("p99_us".into(), Json::Float(micros_f(s.p99))),
                    ]),
                ),
                ("name".into(), Json::Str(format!("{name} (µs)"))),
                ("ph".into(), Json::Str("C".into())),
                ("pid".into(), Json::UInt(1)),
                ("ts".into(), Json::Float(ts)),
            ]));
        }
        for (name, v) in &w.counters {
            events.push(Json::Obj(vec![
                (
                    "args".into(),
                    Json::Obj(vec![("delta".into(), Json::UInt(*v))]),
                ),
                ("name".into(), Json::Str(format!("{name} /window"))),
                ("ph".into(), Json::Str("C".into())),
                ("pid".into(), Json::UInt(1)),
                ("ts".into(), Json::Float(ts)),
            ]));
        }
        for e in &w.events {
            events.push(Json::Obj(vec![
                (
                    "args".into(),
                    Json::Obj(vec![
                        ("detail".into(), Json::Str(e.detail.clone())),
                        ("window".into(), Json::UInt(w.index)),
                    ]),
                ),
                ("name".into(), Json::Str(e.kind.clone())),
                ("ph".into(), Json::Str("i".into())),
                ("pid".into(), Json::UInt(1)),
                ("s".into(), Json::Str("p".into())),
                ("tid".into(), Json::UInt(0)),
                ("ts".into(), Json::Float(micros_f(e.at))),
            ]));
        }
        for a in &w.alerts {
            events.push(Json::Obj(vec![
                (
                    "args".into(),
                    Json::Obj(vec![
                        ("factor".into(), Json::Float(a.rule.factor)),
                        ("longBurn".into(), Json::Float(a.long_burn)),
                        ("shortBurn".into(), Json::Float(a.short_burn)),
                    ]),
                ),
                ("name".into(), Json::Str("slo.burn-alert".into())),
                ("ph".into(), Json::Str("i".into())),
                ("pid".into(), Json::UInt(1)),
                ("s".into(), Json::Str("g".into())),
                ("tid".into(), Json::UInt(0)),
                ("ts".into(), Json::Float(micros_f(w.end))),
            ]));
        }
    }
    sort_json_keys(Json::Obj(vec![
        ("displayTimeUnit".into(), Json::Str("ms".into())),
        (
            "otherData".into(),
            Json::Obj(vec![
                (
                    "schema".into(),
                    Json::Str(format!("{TIMELINE_SCHEMA}+perfetto")),
                ),
                ("virtualClock".into(), Json::Bool(true)),
            ]),
        ),
        ("traceEvents".into(), Json::Arr(events)),
    ]))
}

// ------------------------------------------------------- folded stacks

/// A cross-query aggregate of stage time keyed by semicolon-joined
/// frame paths — the folded-stacks format `flamegraph.pl` and inferno
/// consume directly (`stQuery;shardExec;indexScan 1234` per line,
/// values in nanoseconds of virtual/stage time).
#[derive(Clone, Debug, Default)]
pub struct FoldedStacks {
    frames: BTreeMap<String, u64>,
}

impl FoldedStacks {
    /// An empty accumulator.
    pub fn new() -> FoldedStacks {
        FoldedStacks::default()
    }

    /// Add `nanos` of self time to the stack `path` (frames joined
    /// with `;`, root first).
    pub fn add(&mut self, path: &str, nanos: u64) {
        if nanos > 0 {
            *self.frames.entry(path.to_string()).or_insert(0) += nanos;
        }
    }

    /// Add self time to a stack given as separate frames.
    pub fn add_frames(&mut self, frames: &[&str], nanos: u64) {
        self.add(&frames.join(";"), nanos);
    }

    /// Fold another accumulator in (cross-store / cross-phase merge).
    pub fn merge(&mut self, other: &FoldedStacks) {
        for (k, v) in &other.frames {
            *self.frames.entry(k.clone()).or_insert(0) += v;
        }
    }

    /// Distinct stacks.
    pub fn len(&self) -> usize {
        self.frames.len()
    }

    /// True when nothing was added.
    pub fn is_empty(&self) -> bool {
        self.frames.is_empty()
    }

    /// Total nanoseconds across all stacks.
    pub fn total(&self) -> u64 {
        self.frames.values().sum()
    }

    /// Iterate `(stack, nanos)` in sorted stack order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, u64)> {
        self.frames.iter().map(|(k, v)| (k.as_str(), *v))
    }

    /// Render in folded format, one `stack value` line per entry,
    /// sorted by stack for deterministic artifacts.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for (k, v) in &self.frames {
            out.push_str(k);
            out.push(' ');
            out.push_str(&v.to_string());
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::Registry;
    use crate::slo::SloPolicy;
    use crate::timeline::TimelineConfig;
    use std::sync::Arc;

    fn sample_timeline() -> Timeline {
        let reg = Arc::new(Registry::new());
        let mut tl = Timeline::new(
            reg.clone(),
            TimelineConfig {
                window: Duration::from_millis(10),
                capacity: 64,
            },
        );
        tl.set_slo(SloPolicy {
            name: "query_total".into(),
            objective: 0.9,
            threshold: Duration::from_micros(500),
            rules: vec![crate::slo::BurnRule {
                short_windows: 1,
                long_windows: 2,
                factor: 1.0,
            }],
        });
        for i in 0..20u64 {
            reg.counter("router.queries").inc();
            let lat = Duration::from_micros(if i % 4 == 0 { 900 } else { 100 });
            reg.record("query.total", lat);
            tl.observe_latency(lat);
            if i == 7 {
                tl.annotate("balancer.split", "chunk 3");
            }
            tl.advance(Duration::from_millis(3));
        }
        tl.finish();
        tl.validate().unwrap();
        tl
    }

    #[test]
    fn timeline_json_round_trips_and_validates() {
        let tl = sample_timeline();
        let v = timeline_json(&tl, &[("approach", "hil"), ("curve", "hilbert")]);
        validate_timeline_json(&v).unwrap();
        let text = serde_json::to_string_pretty(&v).unwrap();
        let parsed = serde_json::from_str(&text).unwrap();
        validate_timeline_json(&parsed).unwrap();
        assert_eq!(
            parsed.get("meta").and_then(|m| m.get("approach")?.as_str()),
            Some("hil")
        );
        // The window rows carry the histogram delta and the event.
        assert!(text.contains("query.total"));
        assert!(text.contains("balancer.split"));
    }

    #[test]
    fn validator_rejects_broken_documents() {
        let tl = sample_timeline();
        let v = timeline_json(&tl, &[]);
        let text = serde_json::to_string_pretty(&v).unwrap();
        let bad_schema = text.replace("sts-timeline/1", "sts-timeline/0");
        assert!(validate_timeline_json(&serde_json::from_str(&bad_schema).unwrap()).is_err());
        let bad_slo = text.replace("\"totalViolations\": 5", "\"totalViolations\": 4");
        assert_ne!(bad_slo, text, "expected 5 violations in the sample");
        assert!(validate_timeline_json(&serde_json::from_str(&bad_slo).unwrap()).is_err());
    }

    #[test]
    fn perfetto_export_carries_counter_tracks_and_events() {
        let tl = sample_timeline();
        let v = perfetto_timeline(&tl, "hil/hilbert");
        let events = v.get("traceEvents").and_then(Json::as_array).unwrap();
        let counters = events
            .iter()
            .filter(|e| e.get("ph").and_then(Json::as_str) == Some("C"))
            .count();
        let instants: Vec<&Json> = events
            .iter()
            .filter(|e| e.get("ph").and_then(Json::as_str) == Some("i"))
            .collect();
        assert!(counters > 0);
        assert!(instants
            .iter()
            .any(|e| e.get("name").and_then(Json::as_str) == Some("balancer.split")));
        assert!(instants
            .iter()
            .any(|e| e.get("name").and_then(Json::as_str) == Some("slo.burn-alert")));
        assert_eq!(
            v.get("otherData")
                .and_then(|o| o.get("virtualClock")?.as_bool()),
            Some(true)
        );
        // Round-trips through the shim parser.
        let text = serde_json::to_string_pretty(&v).unwrap();
        serde_json::from_str(&text).unwrap();
    }

    #[test]
    fn sorted_keys_everywhere() {
        fn check(v: &Json) {
            if let Json::Obj(entries) = v {
                for pair in entries.windows(2) {
                    assert!(pair[0].0 <= pair[1].0, "keys out of order: {:?}", pair[1].0);
                }
                for (_, v) in entries {
                    check(v);
                }
            }
            if let Json::Arr(items) = v {
                items.iter().for_each(check);
            }
        }
        let tl = sample_timeline();
        check(&timeline_json(&tl, &[("b", "1"), ("a", "2")]));
        check(&perfetto_timeline(&tl, "x"));
    }

    #[test]
    fn prometheus_text_renders_all_metric_kinds() {
        let reg = Registry::new();
        reg.counter("ingest.docs").add(42);
        reg.gauge("shards.live").set(6);
        reg.record("query.total", Duration::from_micros(250));
        let text = prometheus_text(&reg.snapshot(), &[("approach", "hil")]);
        assert!(text.contains("# TYPE sts_ingest_docs_total counter"));
        assert!(text.contains("sts_ingest_docs_total{approach=\"hil\"} 42"));
        assert!(text.contains("# TYPE sts_shards_live gauge"));
        assert!(text.contains("sts_query_total{approach=\"hil\",quantile=\"0.5\"}"));
        assert!(text.contains("sts_query_total_count{approach=\"hil\"} 1"));
    }

    #[test]
    fn folded_stacks_accumulate_and_render_sorted() {
        let mut f = FoldedStacks::new();
        f.add_frames(&["stQuery", "shardExec", "indexScan"], 100);
        f.add("stQuery;covering", 40);
        f.add_frames(&["stQuery", "shardExec", "indexScan"], 25);
        let mut g = FoldedStacks::new();
        g.add("stQuery;covering", 10);
        f.merge(&g);
        assert_eq!(f.total(), 175);
        assert_eq!(
            f.render(),
            "stQuery;covering 50\nstQuery;shardExec;indexScan 125\n"
        );
    }
}
