//! Observability for the store: metrics and stage tracing.
//!
//! The paper's evaluation (§5.1/§6) is built on per-query execution
//! time broken down per node; this crate supplies the instrumentation
//! layer the rest of the workspace threads through the query path:
//!
//! * [`Counter`] / [`Gauge`] — single atomics, wait-free to record;
//! * [`Histogram`] — an HDR-style log-linear latency histogram with
//!   lock-free recording and p50/p95/p99 readout ([`histogram`]);
//! * [`Registry`] — a process-wide name → metric table. Recording is
//!   an atomic op; the registry lock is only taken to *look up* a
//!   metric (shared read lock) or create it on first use;
//! * [`Span`] — a drop-guard timer that records its elapsed wall time
//!   into a histogram ([`span`]);
//! * [`Stage`] / [`StageBreakdown`] — the query-path stage model
//!   shared by the executor, the router and `explain()` ([`stage`]).
//!
//! # Virtual time
//!
//! Wall-clock timers and fault injection compose carefully: injected
//! latency and backoff waits are *virtual* (summed, never slept — see
//! `sts-cluster`'s fault model), so they must never be measured with a
//! wall clock. The stage model keeps the two apart: every stage a span
//! timer measures is real compute, while the `Recovery` stage is
//! *copied* from the router's virtual `ShardRecovery` accounting. A
//! per-shard breakdown therefore stays exact under chaos testing:
//! recovery-injected delay lands in its own stage instead of inflating
//! scan time.
//!
//! # Example
//!
//! ```
//! use sts_obs::{global, Histogram, Span};
//! use std::time::Duration;
//!
//! let hist = global().histogram("example.latency");
//! {
//!     let _span = Span::enter(&hist); // records on drop
//! }
//! hist.record(Duration::from_micros(250));
//! let snap = hist.snapshot();
//! assert_eq!(snap.count, 2);
//! assert!(snap.p99 >= snap.p50);
//! ```

#![deny(missing_docs)]

pub mod alloc;
pub mod export;
pub mod histogram;
pub mod registry;
pub mod slo;
pub mod span;
pub mod stage;
pub mod timeline;
pub mod trace;

pub use alloc::{AllocSpan, CountingAllocator};
pub use export::{
    perfetto_timeline, prometheus_text, sort_json_keys, timeline_json, validate_timeline_json,
    FoldedStacks, TIMELINE_SCHEMA,
};
pub use histogram::{Histogram, HistogramCounts, HistogramSnapshot};
pub use registry::{global, global_handle, Counter, Gauge, Registry, RegistrySnapshot};
pub use slo::{BurnAlert, BurnRule, SloPolicy, SloTracker, WindowSlo};
pub use span::Span;
pub use stage::{Stage, StageBreakdown};
pub use timeline::{Timeline, TimelineConfig, TimelineEvent, TimelineWindow};
pub use trace::{SpanId, SpanValue, Trace, TraceError, TraceId, TraceSpan, Track};
