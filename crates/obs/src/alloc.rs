//! Heap-allocation accounting for the query hot path.
//!
//! The executor's zero-allocation contract ("no heap allocation per
//! query after warm-up") needs a way to *measure* allocations, not just
//! promise their absence. This module supplies it in two layers:
//!
//! * [`CountingAllocator`] — a `GlobalAlloc` wrapper over the system
//!   allocator that bumps thread-local counters on every allocation.
//!   Test binaries install it with `#[global_allocator]`; production
//!   binaries normally don't, in which case the counters simply stay at
//!   zero and the instrumentation below is free.
//! * [`AllocSpan`] — a delta-meter: snapshot the thread's counter at the
//!   start of a hot section, read the delta at the end. The executor
//!   wraps its scan/fetch loop in one and publishes the delta to an
//!   `sts-obs` counter, so `obs-report` makes allocation regressions
//!   visible the same way latency regressions are.
//!
//! Thread-locality matters twice over: the counters are wait-free with
//! no cross-thread contention, and a span measured entirely on one rayon
//! worker (the executor's situation — a shard query never migrates
//! threads) observes exactly its own section's allocations.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;

thread_local! {
    /// Allocations (`alloc`/`realloc` calls) on this thread.
    static ALLOCS: Cell<u64> = const { Cell::new(0) };
    /// Bytes requested by allocations on this thread.
    static BYTES: Cell<u64> = const { Cell::new(0) };
}

/// A counting wrapper over the system allocator.
///
/// ```ignore
/// #[global_allocator]
/// static ALLOC: sts_obs::alloc::CountingAllocator = sts_obs::alloc::CountingAllocator::new();
/// ```
pub struct CountingAllocator;

impl CountingAllocator {
    /// The wrapper (state lives in thread-locals, not here).
    pub const fn new() -> Self {
        CountingAllocator
    }
}

impl Default for CountingAllocator {
    fn default() -> Self {
        Self::new()
    }
}

// SAFETY: delegates verbatim to `System`; the thread-local bookkeeping
// uses `Cell<u64>` with const initializers, which never allocates and
// has no destructor — safe to touch from inside the allocator itself.
unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.with(|c| c.set(c.get() + 1));
        BYTES.with(|c| c.set(c.get() + layout.size() as u64));
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.with(|c| c.set(c.get() + 1));
        BYTES.with(|c| c.set(c.get() + new_size as u64));
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

/// Allocations observed on this thread so far (0 unless a
/// [`CountingAllocator`] is installed as the global allocator).
pub fn thread_allocations() -> u64 {
    ALLOCS.with(Cell::get)
}

/// Bytes requested on this thread so far (same caveat).
pub fn thread_alloc_bytes() -> u64 {
    BYTES.with(Cell::get)
}

/// Measures the heap allocations a single-threaded section performs.
#[derive(Clone, Copy, Debug)]
pub struct AllocSpan {
    allocs: u64,
    bytes: u64,
}

impl AllocSpan {
    /// Snapshot the current thread's counters.
    pub fn start() -> Self {
        AllocSpan {
            allocs: thread_allocations(),
            bytes: thread_alloc_bytes(),
        }
    }

    /// Allocations since [`start`](Self::start), on this thread.
    pub fn allocations(&self) -> u64 {
        thread_allocations() - self.allocs
    }

    /// Bytes requested since [`start`](Self::start), on this thread.
    pub fn bytes(&self) -> u64 {
        thread_alloc_bytes() - self.bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_without_counting_allocator_reads_zero_delta() {
        // The test binary does not install `CountingAllocator`, so the
        // counters never move — the span must report a clean zero, not
        // underflow.
        let span = AllocSpan::start();
        let v: Vec<u64> = (0..1_000).collect();
        assert_eq!(v.len(), 1_000);
        assert_eq!(span.allocations(), 0);
        assert_eq!(span.bytes(), 0);
    }

    #[test]
    fn counting_allocator_delegates() {
        // Exercise the wrapper directly (not installed globally): it
        // must hand out usable memory and count the calls.
        let a = CountingAllocator::new();
        let before = thread_allocations();
        unsafe {
            let layout = Layout::from_size_align(64, 8).unwrap();
            let p = a.alloc(layout);
            assert!(!p.is_null());
            let p2 = a.realloc(p, layout, 128);
            assert!(!p2.is_null());
            a.dealloc(p2, Layout::from_size_align(128, 8).unwrap());
        }
        assert_eq!(thread_allocations() - before, 2);
        assert!(thread_alloc_bytes() >= 64 + 128);
    }
}
