//! The paper's contribution: spatio-temporal indexing and partitioning
//! approaches over a document-oriented NoSQL store.
//!
//! Four methods from §4/§5.1 of Koutroumanis & Doulkeridis (EDBT 2021):
//!
//! | approach | shard key              | local index                      |
//! |----------|------------------------|----------------------------------|
//! | `bslST`  | `{date}`               | `(location 2dsphere, date)` + auto `date` |
//! | `bslTS`  | `{date}`               | `(date, location 2dsphere)` + auto `date` |
//! | `hil`    | `{hilbertIndex, date}` | auto `(hilbertIndex, date)` — world-extent Hilbert curve |
//! | `hil*`   | `{hilbertIndex, date}` | auto `(hilbertIndex, date)` — data-MBR-extent curve |
//!
//! [`StStore`] is the public facade a downstream application uses:
//! configure an approach, bulk-load GeoJSON-point documents (the Hilbert
//! methods augment each with its `hilbertIndex` value at load time,
//! §4.2.1), optionally pin zones (§4.2.4), and issue spatio-temporal
//! range queries that return both the matching documents and the
//! cluster-level metrics the paper plots (keys/docs examined, nodes,
//! time).
//!
//! # Quickstart
//!
//! ```
//! use sts_core::{Approach, StQuery, StStore, StoreConfig};
//! use sts_document::{doc, DateTime, Document, Value};
//! use sts_geo::GeoRect;
//!
//! let mut store = StStore::new(StoreConfig {
//!     approach: Approach::Hil,
//!     num_shards: 4,
//!     ..Default::default()
//! });
//! let mut d = doc! {
//!     "location" => doc! {
//!         "type" => "Point",
//!         "coordinates" => vec![Value::from(23.72), Value::from(37.98)],
//!     },
//!     "date" => DateTime::parse_iso("2018-10-01T08:34:40Z").unwrap(),
//! };
//! d.ensure_id(0);
//! store.insert(d).unwrap();
//!
//! let (docs, report) = store.st_query(&StQuery {
//!     rect: GeoRect::new(23.0, 37.0, 24.0, 38.5),
//!     t0: DateTime::parse_iso("2018-10-01T00:00:00Z").unwrap(),
//!     t1: DateTime::parse_iso("2018-10-02T00:00:00Z").unwrap(),
//! });
//! assert_eq!(docs.len(), 1);
//! assert_eq!(report.cluster.n_returned(), 1);
//! ```

mod adaptive;
mod api;
mod approach;
mod config;
pub mod profiler;
mod query;
mod report;
pub mod router;
pub mod sthash;

pub use adaptive::access_weight;
pub use api::StStore;
pub use approach::Approach;
pub use config::StoreConfig;
pub use profiler::{ProfileEntry, Profiler, ProfilerConfig, QueryKind};
pub use query::{
    assemble_filter, build_filter, build_filter_with, build_polygon_filter,
    build_polygon_filter_with, compute_covering, CoverBuffers, StQuery,
};
pub use report::QueryReport;
pub use router::{
    AdmissionConfig, CacheCounters, CacheOutcome, PlanCache, ResultCache, RouterConfig,
    RouterReport, Shed, ShedReason,
};
pub use sts_cluster::{
    ExecutorConfig, ExecutorStats, FailPoint, FailPointMode, FaultKind, HealthSnapshot,
    RecoveryPolicy, ShardRecovery, Skew,
};
pub use sts_obs::{FoldedStacks, SloPolicy, Timeline, TimelineConfig, Trace, TraceError, TraceId};
pub use sts_query::QueryError;

/// Document field holding the GeoJSON point.
pub const LOCATION_FIELD: &str = "location";
/// Document field holding the timestamp.
pub const DATE_FIELD: &str = "date";
/// Document field holding the 1D curve value (Hilbert methods).
pub const HILBERT_FIELD: &str = "hilbertIndex";
