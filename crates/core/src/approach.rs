//! The four indexing/partitioning approaches of §5.1.

use crate::{DATE_FIELD, HILBERT_FIELD, LOCATION_FIELD};
use std::fmt;
use std::sync::Arc;
use sts_cluster::ShardKey;
use sts_curve::{Curve, CurveFamily, CurveGrid};
use sts_geo::{GeoPoint, GeoRect, WORLD};
use sts_index::{IndexField, IndexSpec};

/// Which indexing + sharding method the store runs.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub enum Approach {
    /// Time-based sharding, local compound `(location 2dsphere, date)`.
    BslST,
    /// Time-based sharding, local compound `(date, location 2dsphere)`.
    BslTS,
    /// Hilbert sharding/indexing; curve spans the whole globe.
    Hil,
    /// Hilbert sharding/indexing; curve fitted to the data's MBR
    /// (same bit budget → higher effective precision).
    HilStar,
    /// ST-Hash (ref. \[10\] of the paper, §2.2 related work): a time-prefixed space-time code
    /// sharded and indexed as a single field. Not part of the paper's
    /// evaluation matrix ([`Approach::ALL`]); provided so its critique
    /// can be measured (see [`crate::sthash`]).
    StHash,
}

impl Approach {
    /// The paper's evaluation matrix, in presentation order.
    pub const ALL: [Approach; 4] = [
        Approach::BslST,
        Approach::BslTS,
        Approach::Hil,
        Approach::HilStar,
    ];

    /// The matrix plus the ST-Hash related-work baseline.
    pub const EXTENDED: [Approach; 5] = [
        Approach::BslST,
        Approach::BslTS,
        Approach::Hil,
        Approach::HilStar,
        Approach::StHash,
    ];

    /// The paper's short name.
    pub fn name(self) -> &'static str {
        match self {
            Approach::BslST => "bslST",
            Approach::BslTS => "bslTS",
            Approach::Hil => "hil",
            Approach::HilStar => "hil*",
            Approach::StHash => "stHash",
        }
    }

    /// Is this one of the Hilbert-based methods?
    pub fn uses_hilbert(self) -> bool {
        matches!(self, Approach::Hil | Approach::HilStar)
    }

    /// The shard key (§4.1.2 / §4.2.2).
    pub fn shard_key(self) -> ShardKey {
        match self {
            Approach::BslST | Approach::BslTS => ShardKey::range(&[DATE_FIELD]),
            Approach::Hil | Approach::HilStar => ShardKey::range(&[HILBERT_FIELD, DATE_FIELD]),
            Approach::StHash => ShardKey::range(&[crate::sthash::STHASH_FIELD]),
        }
    }

    /// User-created index specs. The shard-key index (`date` for the
    /// baselines, `(hilbertIndex, date)` for the Hilbert methods) is
    /// auto-created by the cluster, matching MongoDB.
    pub fn index_specs(self, geo_bits: u32) -> Vec<IndexSpec> {
        match self {
            Approach::BslST => vec![IndexSpec::new(
                "location_2dsphere_date_1",
                vec![
                    IndexField::geo_bits(LOCATION_FIELD, geo_bits),
                    IndexField::asc(DATE_FIELD),
                ],
            )],
            Approach::BslTS => vec![IndexSpec::new(
                "date_1_location_2dsphere",
                vec![
                    IndexField::asc(DATE_FIELD),
                    IndexField::geo_bits(LOCATION_FIELD, geo_bits),
                ],
            )],
            Approach::Hil | Approach::HilStar | Approach::StHash => vec![],
        }
    }

    /// The curve grid for the Hilbert methods; `None` for the baselines.
    ///
    /// `data_mbr` is only consulted by `hil*` (§5.1: "the applied
    /// Hilbert curve is limited to the spatial region of the data set").
    pub fn curve(self, order: u32, data_mbr: &GeoRect) -> Option<CurveGrid> {
        match self {
            Approach::BslST | Approach::BslTS | Approach::StHash => None,
            Approach::Hil => Some(CurveGrid::world(order)),
            Approach::HilStar => Some(CurveGrid::fitted(*data_mbr, order)),
        }
    }

    /// The pluggable-`family` generalization of [`Approach::curve`]:
    /// `hil` builds the family over the world extent, `hil*` over the
    /// data MBR, the baselines get `None`. `sample` feeds the
    /// data-fitted families (skew GeoHash bucket boundaries) and is
    /// ignored by the analytic ones.
    pub fn curve_for(
        self,
        family: CurveFamily,
        order: u32,
        data_mbr: &GeoRect,
        sample: &[GeoPoint],
    ) -> Option<Arc<dyn Curve>> {
        match self {
            Approach::BslST | Approach::BslTS | Approach::StHash => None,
            Approach::Hil => Some(family.build(&WORLD, order, sample)),
            Approach::HilStar => Some(family.build(data_mbr, order, sample)),
        }
    }

    /// The field zones are defined on (§4.2.4): `date` for the
    /// baselines, `hilbertIndex` for the Hilbert methods.
    pub fn zone_field(self) -> &'static str {
        match self {
            Approach::BslST | Approach::BslTS => DATE_FIELD,
            Approach::Hil | Approach::HilStar => HILBERT_FIELD,
            Approach::StHash => crate::sthash::STHASH_FIELD,
        }
    }
}

impl fmt::Display for Approach {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shard_keys_match_paper() {
        assert_eq!(Approach::BslST.shard_key().fields, vec!["date"]);
        assert_eq!(Approach::BslTS.shard_key().fields, vec!["date"]);
        assert_eq!(
            Approach::Hil.shard_key().fields,
            vec!["hilbertIndex", "date"]
        );
    }

    #[test]
    fn baselines_have_compound_geo_indexes() {
        let st = Approach::BslST.index_specs(26);
        assert_eq!(st.len(), 1);
        assert_eq!(st[0].leading_path(), "location");
        let ts = Approach::BslTS.index_specs(26);
        assert_eq!(ts[0].leading_path(), "date");
        assert!(Approach::Hil.index_specs(26).is_empty());
    }

    #[test]
    fn curves_differ_by_extent() {
        let mbr = GeoRect::new(19.6, 34.9, 28.2, 41.8);
        assert!(Approach::BslST.curve(13, &mbr).is_none());
        let hil = Approach::Hil.curve(13, &mbr).unwrap();
        let star = Approach::HilStar.curve(13, &mbr).unwrap();
        assert_eq!(hil.extent(), &WORLD);
        assert_eq!(star.extent(), &mbr);
    }

    #[test]
    fn curve_for_spans_every_family() {
        let mbr = GeoRect::new(19.6, 34.9, 28.2, 41.8);
        for family in CurveFamily::ALL {
            assert!(Approach::BslTS.curve_for(family, 13, &mbr, &[]).is_none());
            let hil = Approach::Hil.curve_for(family, 13, &mbr, &[]).unwrap();
            let star = Approach::HilStar.curve_for(family, 13, &mbr, &[]).unwrap();
            assert_eq!(hil.family(), family);
            assert_eq!(hil.extent(), &WORLD);
            assert_eq!(star.extent(), &mbr);
        }
        // The default family reproduces the legacy concrete grids.
        let legacy = Approach::Hil.curve(13, &mbr).unwrap();
        let traited = Approach::Hil
            .curve_for(CurveFamily::Hilbert, 13, &mbr, &[])
            .unwrap();
        let p = GeoPoint::new(23.7, 37.9);
        assert_eq!(legacy.index_of(p), traited.index_of(p));
    }

    #[test]
    fn zone_fields() {
        assert_eq!(Approach::BslST.zone_field(), "date");
        assert_eq!(Approach::Hil.zone_field(), "hilbertIndex");
    }

    #[test]
    fn names_and_display() {
        assert_eq!(Approach::HilStar.to_string(), "hil*");
        assert_eq!(
            Approach::ALL.map(|a| a.name()).join(","),
            "bslST,bslTS,hil,hil*"
        );
    }
}
