//! The public store facade.

use crate::approach::Approach;
use crate::config::StoreConfig;
use crate::profiler::{Profiler, ProfilerConfig, QueryKind};
use crate::query::{assemble_filter, build_filter_with, compute_covering, CoverBuffers, StQuery};
use crate::report::QueryReport;
use crate::router::{
    Admission, AdmissionDecision, CacheCounters, CacheOutcome, PlanCache, PlanEntry, PlanKey,
    ResultCache, ResultEntry, ResultKey, RouterConfig, RouterReport, Shed,
};
use crate::{HILBERT_FIELD, LOCATION_FIELD};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};
use sts_cluster::{
    Cluster, ClusterConfig, ClusterQueryReport, ExecutorStats, FailPoint, HealthSnapshot,
    QueryExecOptions, RecoveryPolicy, RoutePlan,
};
use sts_curve::Curve;
use sts_document::Document;
use sts_index::geo_point_of;
use sts_obs::{FoldedStacks, Registry, SloPolicy, Timeline, TimelineConfig, Trace, TraceId};
use sts_query::Filter;
use sts_storage::CollectionStats;

/// Continuous-telemetry state: the windowed timeline plus the
/// cross-query flamegraph aggregate and the balancer-event cursor used
/// to annotate splits/migrations incrementally.
struct Telemetry {
    timeline: Timeline,
    folded: FoldedStacks,
    /// Next balancer-event `seq` to drain from the health ledger.
    last_event_seq: u64,
}

/// A deployed spatio-temporal store: one approach, one sharded cluster.
pub struct StStore {
    config: StoreConfig,
    curve: Option<Arc<dyn Curve>>,
    /// The active curve's fingerprint, cached at deploy time — the
    /// plan/result cache key component identifying the exact fit.
    fingerprint: Option<u64>,
    cluster: Cluster,
    profiler: Profiler,
    /// Reusable Hilbert-decomposition buffers (interval-tree arena +
    /// covering list). Queries take `&self`, hence the mutex; it is
    /// uncontended in the single-router simulator.
    cover: Mutex<CoverBuffers>,
    /// Covering-plan cache (`None` when disabled). `Arc` so one cache
    /// can front several stores — entries are fingerprint-keyed.
    plan_cache: Option<Arc<PlanCache>>,
    /// Result-page cache (`None` when disabled, the default).
    result_cache: Option<Arc<ResultCache>>,
    /// Admission control + load shedding.
    admission: Admission,
    /// Continuous telemetry (disabled until
    /// [`StStore::enable_timeline`]). `&self` recording, like the
    /// profiler.
    telemetry: Mutex<Option<Telemetry>>,
}

/// What [`StStore::plan_query`] hands the execution paths.
struct PlannedQuery {
    filter: Filter,
    hilbert_time: Duration,
    hilbert_ranges: usize,
    route: Option<Arc<RoutePlan>>,
    router: RouterReport,
}

impl StStore {
    /// Deploy a fresh (empty) store for the configured approach.
    pub fn new(config: StoreConfig) -> Self {
        let curve = config.approach.curve_for(
            config.curve,
            config.curve_order,
            &config.data_mbr,
            &config.curve_sample,
        );
        let cluster = Cluster::new(
            ClusterConfig {
                num_shards: config.num_shards,
                max_chunk_bytes: config.max_chunk_bytes,
                planner: config.planner,
                recovery: config.recovery,
                fault_seed: config.fault_seed,
                balancer: config.balancer,
                executor: config.router.executor,
            },
            config.approach.shard_key(),
            config.approach.index_specs(config.geo_bits),
        );
        let fingerprint = curve.as_ref().map(|c| c.fingerprint());
        let router = config.router;
        StStore {
            config,
            curve,
            fingerprint,
            cluster,
            profiler: Profiler::default(),
            cover: Mutex::new(CoverBuffers::new()),
            plan_cache: (router.plan_cache_entries > 0).then(|| {
                Arc::new(PlanCache::new(
                    router.plan_cache_entries,
                    router.plan_cache_shards,
                ))
            }),
            result_cache: (router.result_cache_entries > 0).then(|| {
                Arc::new(ResultCache::new(
                    router.result_cache_entries,
                    router.plan_cache_shards,
                ))
            }),
            admission: Admission::new(router.admission),
            telemetry: Mutex::new(None),
        }
    }

    /// Replace the router-tier configuration: caches are rebuilt empty
    /// at the new sizes, admission buckets reset, and the executor
    /// retuned.
    pub fn set_router_config(&mut self, router: RouterConfig) {
        self.config.router = router;
        self.plan_cache = (router.plan_cache_entries > 0).then(|| {
            Arc::new(PlanCache::new(
                router.plan_cache_entries,
                router.plan_cache_shards,
            ))
        });
        self.result_cache = (router.result_cache_entries > 0).then(|| {
            Arc::new(ResultCache::new(
                router.result_cache_entries,
                router.plan_cache_shards,
            ))
        });
        self.admission = Admission::new(router.admission);
        self.cluster.set_executor_config(router.executor);
    }

    /// Share a covering-plan cache with other stores (a router process
    /// fronting many collections). Entries are keyed by approach +
    /// curve fingerprint + budget, so stores with different fitted
    /// curves coexist in one cache without ever sharing entries.
    pub fn share_plan_cache(&mut self, cache: Arc<PlanCache>) {
        self.plan_cache = Some(cache);
    }

    /// The live covering-plan cache, if enabled.
    pub fn plan_cache(&self) -> Option<&Arc<PlanCache>> {
        self.plan_cache.as_ref()
    }

    /// Plan-cache counters (zeroed `CacheCounters` when disabled).
    pub fn plan_cache_counters(&self) -> CacheCounters {
        self.plan_cache
            .as_ref()
            .map(|c| c.counters())
            .unwrap_or_default()
    }

    /// Result-cache counters (zeroed `CacheCounters` when disabled).
    pub fn result_cache_counters(&self) -> CacheCounters {
        self.result_cache
            .as_ref()
            .map(|c| c.counters())
            .unwrap_or_default()
    }

    /// Work-stealing shard-executor counters.
    pub fn executor_stats(&self) -> ExecutorStats {
        self.cluster.executor_stats()
    }

    /// Queries refused by admission control so far.
    pub fn shed_count(&self) -> u64 {
        self.admission.sheds()
    }

    /// Queries escalated to hedged reads by the latency policy so far.
    pub fn hedge_count(&self) -> u64 {
        self.admission.hedges()
    }

    /// Replace the covering-range budget (per-query decompositions pick
    /// it up immediately). Benchmarks use this to ablate budgets against
    /// one loaded store instead of rebuilding it per configuration.
    pub fn set_range_budget(&mut self, budget: sts_curve::RangeBudget) {
        self.config.range_budget = budget;
    }

    /// Build the approach's filter for `query` using the store's
    /// reusable decomposition buffers.
    fn cover_filter(&self, query: &StQuery) -> (Filter, std::time::Duration, usize) {
        if self.config.approach == Approach::StHash {
            crate::sthash::build_filter(query, self.config.range_budget.max_ranges.min(1 << 20))
        } else {
            let mut cover = self
                .cover
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            build_filter_with(
                query,
                self.curve.as_deref(),
                self.config.range_budget,
                &mut cover,
            )
        }
    }

    /// Plan a query through the covering-plan cache: on a hit the
    /// filter is assembled from the cached coalesced ranges (skipping
    /// the curve decomposition entirely) and the cached routing
    /// decision is replayed if its generation still matches the chunk
    /// map; on a miss the covering is computed for the *quantized*
    /// plan-key rectangle and the entry filled. StHash bypasses the
    /// cache (its composite-hash filter has its own construction).
    fn plan_query(&self, query: &StQuery) -> PlannedQuery {
        if self.config.approach == Approach::StHash {
            let (filter, hilbert_time, hilbert_ranges) = crate::sthash::build_filter(
                query,
                self.config.range_budget.max_ranges.min(1 << 20),
            );
            return PlannedQuery {
                filter,
                hilbert_time,
                hilbert_ranges,
                route: None,
                router: RouterReport::default(),
            };
        }
        let Some(cache) = &self.plan_cache else {
            let (filter, hilbert_time, hilbert_ranges) = self.cover_filter(query);
            return PlannedQuery {
                filter,
                hilbert_time,
                hilbert_ranges,
                route: None,
                router: RouterReport::default(),
            };
        };
        let (key, qrect) = PlanKey::new(
            self.config.approach,
            self.fingerprint,
            self.config.range_budget.max_ranges,
            query,
            &self.config.router,
        );
        let obs = self.metrics_registry();
        if let Some(entry) = cache.get(&key) {
            obs.counter("router.plancache.hit").inc();
            let filter = assemble_filter(query, self.curve.is_some().then_some(&entry.ranges[..]));
            let mut router = RouterReport {
                plan_cache: CacheOutcome::Hit,
                ..RouterReport::default()
            };
            let route = if entry.route.generation == self.cluster.routing_generation() {
                router.route_reused = true;
                entry.route.clone()
            } else {
                // The covering is still good; only the routing half
                // went stale (split/migration/zones since the fill).
                obs.counter("router.plancache.route_refresh").inc();
                let fresh = Arc::new(self.cluster.route_plan(&filter));
                cache.insert(
                    key,
                    PlanEntry {
                        ranges: entry.ranges.clone(),
                        route: fresh.clone(),
                    },
                );
                fresh
            };
            return PlannedQuery {
                filter,
                hilbert_time: Duration::ZERO,
                hilbert_ranges: entry.ranges.len(),
                route: Some(route),
                router,
            };
        }
        obs.counter("router.plancache.miss").inc();
        let (ranges, hilbert_time) = match self.curve.as_deref() {
            None => (Arc::new(Vec::new()), Duration::ZERO),
            Some(grid) => {
                let mut cover = self
                    .cover
                    .lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
                let t = compute_covering(&qrect, grid, self.config.range_budget, &mut cover);
                (Arc::new(cover.ranges().to_vec()), t)
            }
        };
        let filter = assemble_filter(query, self.curve.is_some().then_some(&ranges[..]));
        let route = Arc::new(self.cluster.route_plan(&filter));
        let hilbert_ranges = ranges.len();
        cache.insert(
            key,
            PlanEntry {
                ranges,
                route: route.clone(),
            },
        );
        PlannedQuery {
            filter,
            hilbert_time,
            hilbert_ranges,
            route: Some(route),
            router: RouterReport {
                plan_cache: CacheOutcome::Miss,
                ..RouterReport::default()
            },
        }
    }

    /// Rescope every metric this store records (router stages, shard
    /// stage timers, the covering histogram) onto `obs` instead of the
    /// process-wide registry, so concurrent stores never bleed
    /// counters into each other.
    pub fn set_metrics_registry(&mut self, obs: Arc<Registry>) {
        self.cluster.set_metrics_registry(obs);
    }

    /// The registry this store records metrics into.
    pub fn metrics_registry(&self) -> &Arc<Registry> {
        self.cluster.metrics_registry()
    }

    /// The slow-query profiler (disabled until
    /// [`StStore::set_profiler`] enables it).
    pub fn profiler(&self) -> &Profiler {
        &self.profiler
    }

    /// Reconfigure the slow-query profiler. Takes `&self`, like
    /// `db.setProfilingLevel()` against a live server.
    pub fn set_profiler(&self, config: ProfilerConfig) {
        self.profiler.configure(config);
    }

    /// The captured slow-query log as `system.profile`-style
    /// documents, oldest first — the query-able mirror of
    /// [`StStore::st_explain`].
    pub fn profile(&self) -> Vec<Document> {
        self.profiler
            .entries()
            .iter()
            .map(crate::profiler::ProfileEntry::to_document)
            .collect()
    }

    /// Execute a query and return its causal span tree on the virtual
    /// clock (trace id = the store's operation sequence number). Load
    /// `trace.to_chrome_json()` in `chrome://tracing`/Perfetto.
    pub fn st_trace(&self, query: &StQuery) -> Trace {
        let (_, report) = self.st_query(query);
        report.trace(TraceId(self.profiler.last_op().unwrap_or(0)))
    }

    /// Cluster-health telemetry: per-shard/per-chunk load, skew
    /// metrics and the balancer event history.
    pub fn health_snapshot(&self) -> HealthSnapshot {
        self.cluster.health_snapshot()
    }

    /// Turn on continuous telemetry: a windowed [`Timeline`] over this
    /// store's metrics registry (optionally tracking `slo`), plus the
    /// cross-query folded-stacks flamegraph aggregate. Every query
    /// advances the timeline's virtual clock by its
    /// `QueryReport::total_time()`; every batch commit advances it by
    /// the batch's measured wall time and stamps balancer
    /// split/migration events from the health ledger as timeline
    /// annotations. Re-enabling restarts from a fresh base sample.
    pub fn enable_timeline(&self, cfg: TimelineConfig, slo: Option<SloPolicy>) {
        let mut timeline = Timeline::new(self.metrics_registry().clone(), cfg);
        if let Some(policy) = slo {
            timeline.set_slo(policy);
        }
        *self
            .telemetry
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner) = Some(Telemetry {
            timeline,
            folded: FoldedStacks::new(),
            last_event_seq: self.cluster.balancer_event_count(),
        });
    }

    /// Whether continuous telemetry is currently recording.
    pub fn timeline_enabled(&self) -> bool {
        self.telemetry
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .is_some()
    }

    /// Inspect the live timeline without stopping it (mid-run probes
    /// in tests and benches).
    pub fn with_timeline<R>(&self, f: impl FnOnce(&Timeline) -> R) -> Option<R> {
        let guard = self
            .telemetry
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        guard.as_ref().map(|tel| f(&tel.timeline))
    }

    /// Stop continuous telemetry: drain any still-unseen balancer
    /// events, seal the final partial window, and hand back the
    /// finished timeline plus the cross-query flamegraph aggregate.
    pub fn finish_timeline(&self) -> Option<(Timeline, FoldedStacks)> {
        let taken = self
            .telemetry
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .take();
        taken.map(|mut tel| {
            for e in self.cluster.balancer_events_since(tel.last_event_seq) {
                tel.timeline.annotate(e.kind.name(), e.detail());
            }
            tel.timeline.finish();
            (tel.timeline, tel.folded)
        })
    }

    /// Annotate the timeline after a write-path operation: an optional
    /// leading event, then every balancer event the operation appended
    /// to the health ledger, then advance the virtual clock by the
    /// operation's measured wall time.
    fn timeline_note_write(&self, lead: Option<(&str, String)>, wall: std::time::Duration) {
        let mut guard = self
            .telemetry
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let Some(tel) = guard.as_mut() else {
            return;
        };
        if let Some((kind, detail)) = lead {
            tel.timeline.annotate(kind, detail);
        }
        let events = self.cluster.balancer_events_since(tel.last_event_seq);
        tel.last_event_seq += events.len() as u64;
        for e in events {
            tel.timeline.annotate(e.kind.name(), e.detail());
        }
        tel.timeline.advance(wall);
    }

    /// Drop one annotation on the live timeline (no-op when telemetry
    /// is off).
    fn timeline_annotate(&self, kind: &str, detail: String) {
        let mut guard = self
            .telemetry
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        if let Some(tel) = guard.as_mut() {
            tel.timeline.annotate(kind, detail);
        }
    }

    /// Post-execution bookkeeping shared by every query path: the
    /// covering histogram (Hilbert methods decompose on every query),
    /// the end-to-end latency histogram, the continuous timeline (SLO
    /// accounting + flamegraph folding + virtual-clock advance) and
    /// the slow-query profiler.
    fn observe_query(&self, kind: QueryKind, query: StQuery, report: &QueryReport) {
        let obs = self.metrics_registry();
        if self.curve.is_some() {
            obs.record("query.covering", report.hilbert_time);
            // Distribution of covering sizes, not just a running total:
            // obs-report renders p50/p95/max so a budget regression (or a
            // pathological query shape) is visible at a glance.
            obs.histogram("query.covering_ranges")
                .record_value(report.hilbert_ranges as u64);
        }
        let total = report.total_time();
        // End-to-end virtual latency (covering + cluster wall + injected
        // recovery delay) — the histogram the timeline windows and the
        // SLO threshold judge.
        obs.record("query.total", total);
        {
            let mut guard = self
                .telemetry
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            if let Some(tel) = guard.as_mut() {
                tel.timeline.observe_latency(total);
                report.fold_stages(&mut tel.folded);
                tel.timeline.advance(total);
            }
        }
        self.profiler
            .observe(kind, self.config.approach, query, report);
    }

    /// The configured approach.
    pub fn approach(&self) -> Approach {
        self.config.approach
    }

    /// The configuration.
    pub fn config(&self) -> &StoreConfig {
        &self.config
    }

    /// The active curve (curve-based methods only).
    pub fn curve(&self) -> Option<&dyn Curve> {
        self.curve.as_deref()
    }

    /// The underlying cluster (read access for diagnostics).
    pub fn cluster(&self) -> &Cluster {
        &self.cluster
    }

    /// Mutable cluster access (zone management, balancing).
    pub(crate) fn cluster_mut(&mut self) -> &mut Cluster {
        &mut self.cluster
    }

    /// Arm (or re-arm) a named failpoint on the router — chaos testing
    /// through the read-only facade, like `configureFailPoint`.
    pub fn arm_failpoint(&self, name: impl Into<String>, point: FailPoint) {
        self.cluster.arm_failpoint(name, point);
    }

    /// Disarm one failpoint; `true` if it was armed.
    pub fn disarm_failpoint(&self, name: &str) -> bool {
        self.cluster.disarm_failpoint(name)
    }

    /// Disarm every failpoint.
    pub fn disarm_all_failpoints(&self) {
        self.cluster.disarm_all_failpoints();
    }

    /// Replace the router's recovery policy.
    pub fn set_recovery_policy(&mut self, policy: RecoveryPolicy) {
        self.cluster.set_recovery_policy(policy);
    }

    /// Augment one document with the approach's derived fields: the
    /// Hilbert methods add the 1D curve value as `hilbertIndex`
    /// (§4.2.1), StHash its composite hash. Shared by the synchronous
    /// insert path and the batched ingest path.
    fn augment(&self, doc: &mut Document) -> Result<(), String> {
        if let Some(grid) = &self.curve {
            let p = geo_point_of(doc, LOCATION_FIELD)
                .ok_or_else(|| "document lacks a valid GeoJSON location".to_string())?;
            doc.set(HILBERT_FIELD, grid.index_of(p) as i64);
        }
        if self.config.approach == Approach::StHash {
            let p = geo_point_of(doc, LOCATION_FIELD)
                .ok_or_else(|| "document lacks a valid GeoJSON location".to_string())?;
            let t = doc
                .get(crate::DATE_FIELD)
                .and_then(sts_document::Value::as_datetime)
                .ok_or_else(|| "document lacks a datetime `date` field".to_string())?;
            doc.set(crate::sthash::STHASH_FIELD, crate::sthash::sthash_of(p, t));
        }
        Ok(())
    }

    /// Augment (for Hilbert methods) and insert one document.
    ///
    /// The document must carry a GeoJSON point under `location` and a
    /// datetime under `date`; the Hilbert methods add the 1D value as a
    /// new `hilbertIndex` field (§4.2.1) before routing.
    pub fn insert(&mut self, mut doc: Document) -> Result<(), String> {
        self.augment(&mut doc)?;
        self.cluster.insert(&doc)
    }

    /// Bulk load documents, returning how many were stored.
    pub fn bulk_load<I: IntoIterator<Item = Document>>(&mut self, docs: I) -> Result<u64, String> {
        let mut n = 0;
        for d in docs {
            self.insert(d)?;
            n += 1;
        }
        Ok(n)
    }

    /// Batched concurrent ingest: augment and stage every document,
    /// then commit the batch with one atomic epoch publish — queries
    /// racing the batch see all of it or none of it. The live balancer
    /// (splits + fault-tolerant migrations) runs at the commit point.
    /// Returns how many documents were ingested; on error the batch is
    /// rolled back and nothing becomes visible.
    pub fn insert_batch<I: IntoIterator<Item = Document>>(
        &mut self,
        docs: I,
    ) -> Result<u64, String> {
        let augmented: Result<Vec<Document>, String> = docs
            .into_iter()
            .map(|mut d| self.augment(&mut d).map(|()| d))
            .collect();
        let started = std::time::Instant::now();
        let n = self.cluster.ingest(augmented?)?;
        self.timeline_note_write(
            Some(("ingest.commit", format!("{n} docs"))),
            started.elapsed(),
        );
        Ok(n)
    }

    /// Stage one document into the in-flight ingest batch without
    /// committing it (invisible to queries until
    /// [`StStore::commit_batch`]). Schedule-driven tests use this to
    /// interleave staging, queries and balancer actions explicitly.
    pub fn stage(&mut self, mut doc: Document) -> Result<(), String> {
        self.augment(&mut doc)?;
        self.cluster.stage(&doc).map(|_| ())
    }

    /// Publish the in-flight staged batch and run the live balancer.
    pub fn commit_batch(&mut self) {
        let started = std::time::Instant::now();
        self.cluster.commit_batch();
        self.timeline_note_write(
            Some(("ingest.commit", "staged batch".to_string())),
            started.elapsed(),
        );
    }

    /// Split chunk `cidx` at its median shard key (jumbo marking
    /// applies as usual). Schedule-driven tests use this to interleave
    /// balancer actions with ingest and queries at exact points.
    pub fn split_chunk(&mut self, cidx: usize) {
        let started = std::time::Instant::now();
        self.cluster.split_chunk(cidx);
        self.timeline_note_write(None, started.elapsed());
    }

    /// Migrate chunk `cidx` to shard `dst` through the fault-aware
    /// two-phase protocol; `false` means the migration rolled back and
    /// the chunk stayed on its donor.
    pub fn migrate_chunk(&mut self, cidx: usize, dst: usize) -> bool {
        let started = std::time::Instant::now();
        let moved = self.cluster.migrate_chunk(cidx, dst);
        self.timeline_note_write(None, started.elapsed());
        moved
    }

    /// Execute a spatio-temporal range query.
    pub fn st_query(&self, query: &StQuery) -> (Vec<Document>, QueryReport) {
        self.st_query_exec(query, None, false)
    }

    /// Execute a query through admission control: the tenant's token
    /// bucket is charged, and when the health ledger's p99 exceeds the
    /// latency budget the query is hedged (burn still tolerable) or
    /// shed (SLO burning fast — see [`crate::router::AdmissionConfig`]).
    /// Every shed and forced hedge lands on the timeline as an event
    /// and in the `router.sheds`/`router.hedges_forced` counters.
    pub fn st_query_admitted(
        &self,
        tenant: &str,
        query: &StQuery,
    ) -> Result<(Vec<Document>, QueryReport), Shed> {
        let (p99, observations) = self.cluster.health_latency_percentile(0.99);
        // `budget_consumed` folds the open window in, so the signal is
        // live even before the timeline seals its first window.
        let burn = self
            .with_timeline(|t| t.slo().map(|s| s.budget_consumed()))
            .flatten();
        match self.admission.decide(tenant, p99, observations, burn) {
            AdmissionDecision::Admit => Ok(self.st_query(query)),
            AdmissionDecision::AdmitHedged => {
                self.metrics_registry()
                    .counter("router.hedges_forced")
                    .inc();
                self.timeline_annotate(
                    "router.hedge",
                    format!("tenant={tenant} p99={}us over budget", p99.as_micros()),
                );
                let hedged = RecoveryPolicy {
                    hedge_reads: true,
                    ..self.config.recovery
                };
                Ok(self.st_query_exec(query, Some(hedged), true))
            }
            AdmissionDecision::Shed(shed) => {
                self.metrics_registry().counter("router.sheds").inc();
                self.timeline_annotate("router.shed", shed.to_string());
                Err(shed)
            }
        }
    }

    /// The shared find path: result-cache probe, plan-cache-assisted
    /// covering + routing, execution, result-cache fill.
    fn st_query_exec(
        &self,
        query: &StQuery,
        recovery: Option<RecoveryPolicy>,
        hedged_by_policy: bool,
    ) -> (Vec<Document>, QueryReport) {
        let started = Instant::now();
        let rkey = self
            .result_cache
            .as_ref()
            .filter(|_| self.config.approach != Approach::StHash)
            .map(|_| {
                ResultKey::new(
                    self.config.approach,
                    self.fingerprint,
                    self.config.range_budget.max_ranges,
                    query,
                )
            });
        let mut result_outcome = CacheOutcome::Bypass;
        if let (Some(cache), Some(key)) = (&self.result_cache, rkey.as_ref()) {
            let epoch = self.cluster.snapshot_epoch();
            let writes = self.cluster.write_generation();
            match cache.get(key) {
                Some(entry) if entry.valid_at(epoch, writes) => {
                    self.metrics_registry()
                        .counter("router.resultcache.hit")
                        .inc();
                    let report = QueryReport {
                        cluster: entry.hit_report(started.elapsed()),
                        hilbert_time: Duration::ZERO,
                        hilbert_ranges: entry.ranges,
                        curve_fingerprint: self.fingerprint,
                        router: RouterReport {
                            result_cache: CacheOutcome::Hit,
                            hedged_by_policy,
                            ..RouterReport::default()
                        },
                    };
                    self.observe_query(QueryKind::Find, *query, &report);
                    return ((*entry.docs).clone(), report);
                }
                Some(_) => {
                    // A page exists but the data moved on; drop it and
                    // recompute (the fill below re-stamps it).
                    cache.invalidate(key);
                    self.metrics_registry()
                        .counter("router.resultcache.stale")
                        .inc();
                    result_outcome = CacheOutcome::Stale;
                }
                None => {
                    self.metrics_registry()
                        .counter("router.resultcache.miss")
                        .inc();
                    result_outcome = CacheOutcome::Miss;
                }
            }
        }
        let planned = self.plan_query(query);
        let epoch = self.cluster.snapshot_epoch();
        let writes = self.cluster.write_generation();
        let (docs, cluster) = self.cluster.query_exec(
            &planned.filter,
            QueryExecOptions {
                route: planned.route.as_deref(),
                recovery,
            },
        );
        if result_outcome != CacheOutcome::Bypass {
            if let (Some(cache), Some(key)) = (&self.result_cache, rkey) {
                // Cache only complete pages whose data version did not
                // move during execution — a concurrent commit between
                // the stamp and the scan could otherwise freeze a torn
                // batch into the cache.
                if !cluster.partial
                    && docs.len() <= self.config.router.result_cache_max_docs
                    && self.cluster.snapshot_epoch() == epoch
                    && self.cluster.write_generation() == writes
                {
                    cache.insert(
                        key,
                        ResultEntry {
                            docs: Arc::new(docs.clone()),
                            report: Arc::new(cluster.clone()),
                            ranges: planned.hilbert_ranges,
                            epoch,
                            writes,
                        },
                    );
                }
            }
        }
        let report = QueryReport {
            cluster,
            hilbert_time: planned.hilbert_time,
            hilbert_ranges: planned.hilbert_ranges,
            curve_fingerprint: self.fingerprint,
            router: RouterReport {
                result_cache: result_outcome,
                hedged_by_policy,
                ..planned.router
            },
        };
        self.observe_query(QueryKind::Find, *query, &report);
        (docs, report)
    }

    /// MongoDB-style `explain("executionStats")`: execute the query and
    /// return the stage-timing document instead of the result set —
    /// per-shard planning/indexScan/fetchFilter/recovery micros plus the
    /// router's covering/routing/merge stages and the router-tier
    /// cache counters.
    pub fn st_explain(&self, query: &StQuery) -> Document {
        let mut d = self.st_query(query).1.explain();
        if let Some(cache) = &self.plan_cache {
            d.set("planCacheCounters", counters_doc(cache.counters()));
        }
        if let Some(cache) = &self.result_cache {
            d.set("resultCacheCounters", counters_doc(cache.counters()));
        }
        d
    }

    /// Like [`StStore::st_query`], but a shard abandoned by the
    /// fault-tolerant router is an error instead of a silently partial
    /// result set.
    pub fn try_st_query(
        &self,
        query: &StQuery,
    ) -> Result<(Vec<Document>, QueryReport), sts_query::QueryError> {
        let (docs, report) = self.st_query(query);
        if report.cluster.partial {
            Err(sts_query::QueryError::ShardsUnavailable {
                shards: report.cluster.failed_shards(),
            })
        } else {
            Ok((docs, report))
        }
    }

    /// Execute a **polygonal** spatio-temporal query (§6 extension):
    /// every point inside `polygon` between `t0` and `t1` inclusive.
    pub fn polygon_query(
        &self,
        polygon: &sts_geo::GeoPolygon,
        t0: sts_document::DateTime,
        t1: sts_document::DateTime,
    ) -> (Vec<Document>, QueryReport) {
        let (filter, hilbert_time, hilbert_ranges) = {
            let mut cover = self
                .cover
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            crate::query::build_polygon_filter_with(
                polygon,
                t0,
                t1,
                self.curve.as_deref(),
                self.config.range_budget,
                &mut cover,
            )
        };
        let (docs, cluster) = self.cluster.query(&filter);
        let report = QueryReport {
            cluster,
            hilbert_time,
            hilbert_ranges,
            curve_fingerprint: self.fingerprint,
            router: RouterReport::default(),
        };
        // The profiler records the polygon's bounding box as the shape.
        let shape = StQuery {
            rect: *polygon.bbox(),
            t0,
            t1,
        };
        self.observe_query(QueryKind::Polygon, shape, &report);
        (docs, report)
    }

    /// The store-level filter a query translates to (for explain-style
    /// inspection and tests).
    pub fn filter_for(&self, query: &StQuery) -> Filter {
        self.cover_filter(query).0
    }

    /// Run an arbitrary filter through the router.
    pub fn find(&self, filter: &Filter) -> (Vec<Document>, ClusterQueryReport) {
        self.cluster.query(filter)
    }

    /// Spatio-temporal query with result shaping (sort + limit):
    /// distributed top-k across the targeted shards.
    pub fn st_query_with_options(
        &self,
        query: &StQuery,
        options: &sts_query::FindOptions,
    ) -> (Vec<Document>, QueryReport) {
        let planned = self.plan_query(query);
        let (docs, cluster) = self.cluster.query_with_options(&planned.filter, options);
        let report = QueryReport {
            cluster,
            hilbert_time: planned.hilbert_time,
            hilbert_ranges: planned.hilbert_ranges,
            curve_fingerprint: self.fingerprint,
            router: planned.router,
        };
        self.observe_query(QueryKind::TopK, *query, &report);
        (docs, report)
    }

    /// Distributed `$group` aggregation over a spatio-temporal query —
    /// the analytical workloads of §1 (fuel consumption, movement
    /// patterns) run through this.
    pub fn st_aggregate(
        &self,
        query: &StQuery,
        spec: &sts_query::GroupBy,
    ) -> (Vec<Document>, QueryReport) {
        let planned = self.plan_query(query);
        let (docs, cluster) = self.cluster.aggregate(&planned.filter, spec);
        let report = QueryReport {
            cluster,
            hilbert_time: planned.hilbert_time,
            hilbert_ranges: planned.hilbert_ranges,
            curve_fingerprint: self.fingerprint,
            router: planned.router,
        };
        self.observe_query(QueryKind::Aggregate, *query, &report);
        (docs, report)
    }

    /// Configure zones per §4.2.4: `$bucketAuto` boundaries on the
    /// approach's zone field (`hilbertIndex` for Hilbert methods, `date`
    /// for the baselines), one zone per shard, data migrated to match.
    pub fn apply_zones(&mut self) {
        let field = self.config.approach.zone_field();
        let boundaries = self
            .cluster
            .bucket_auto_boundaries(field, self.config.num_shards);
        self.cluster.apply_zones(&boundaries);
    }

    /// Delete every document matching a spatio-temporal query (e.g. GDPR
    /// erasure of a region/time window). Returns the number removed.
    pub fn st_delete(&mut self, query: &StQuery) -> u64 {
        let filter = self.filter_for(query);
        self.cluster.delete(&filter)
    }

    /// Total documents stored.
    pub fn doc_count(&self) -> u64 {
        self.cluster.doc_count()
    }

    /// Aggregated collection statistics (Table 6).
    pub fn collection_stats(&self) -> CollectionStats {
        self.cluster.collection_stats()
    }

    /// Per-index cluster-wide sizes (Fig. 14).
    pub fn index_sizes(&self) -> Vec<(String, sts_btree::SizeReport)> {
        self.cluster.index_sizes()
    }
}

/// Render cache counters as an explain sub-document.
fn counters_doc(c: CacheCounters) -> sts_document::Value {
    sts_document::Value::Document(sts_document::doc! {
        "hits" => c.hits as i64,
        "misses" => c.misses as i64,
        "evictions" => c.evictions as i64,
        "insertions" => c.insertions as i64,
        "stale" => c.stale as i64,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use sts_document::{doc, DateTime, Value};
    use sts_geo::GeoRect;

    fn record(i: u32, lon: f64, lat: f64, ms: i64) -> Document {
        let mut d = doc! {
            "location" => doc! {
                "type" => "Point",
                "coordinates" => vec![Value::from(lon), Value::from(lat)],
            },
            "date" => DateTime::from_millis(ms),
            "vehicle" => format!("veh-{}", i % 7),
        };
        d.ensure_id(i);
        d
    }

    fn small_store(approach: Approach) -> StStore {
        let mut store = StStore::new(StoreConfig {
            approach,
            num_shards: 4,
            max_chunk_bytes: 16 * 1024,
            ..Default::default()
        });
        // A 40×40 grid over part of Greece, one point per minute.
        let mut i = 0;
        for x in 0..40 {
            for y in 0..40 {
                let lon = 20.0 + f64::from(x) * 0.2;
                let lat = 35.0 + f64::from(y) * 0.15;
                store
                    .insert(record(i, lon, lat, i64::from(i) * 60_000))
                    .unwrap();
                i += 1;
            }
        }
        store
    }

    fn truth(store: &StStore, q: &StQuery) -> usize {
        store
            .cluster()
            .shards()
            .iter()
            .map(|s| {
                s.collection()
                    .iter()
                    .filter(|(_, d)| {
                        let p = geo_point_of(d, LOCATION_FIELD).unwrap();
                        q.matches(p.lon, p.lat, d.get("date").unwrap().as_datetime().unwrap())
                    })
                    .count()
            })
            .sum()
    }

    #[test]
    fn all_approaches_agree_on_results() {
        let q = StQuery {
            rect: GeoRect::new(22.0, 36.0, 25.0, 38.5),
            t0: DateTime::from_millis(10_000_000),
            t1: DateTime::from_millis(60_000_000),
        };
        let mut counts = Vec::new();
        for approach in Approach::ALL {
            let store = small_store(approach);
            let expected = truth(&store, &q);
            let (docs, report) = store.st_query(&q);
            assert_eq!(docs.len(), expected, "{approach}");
            assert_eq!(report.cluster.n_returned() as usize, expected, "{approach}");
            if approach.uses_hilbert() {
                assert!(report.hilbert_ranges > 0, "{approach}");
            } else {
                assert_eq!(report.hilbert_ranges, 0, "{approach}");
            }
            counts.push(docs.len());
        }
        assert!(counts.iter().all(|&c| c == counts[0]));
        assert!(counts[0] > 0);
    }

    #[test]
    fn hilbert_docs_carry_index_field() {
        let store = small_store(Approach::Hil);
        let (docs, _) = store.st_query(&StQuery {
            rect: GeoRect::new(20.0, 35.0, 28.0, 41.0),
            t0: DateTime::from_millis(0),
            t1: DateTime::from_millis(1_000_000_000),
        });
        assert!(!docs.is_empty());
        assert!(docs.iter().all(|d| d.get(HILBERT_FIELD).is_some()));
        // Baselines must NOT carry it (Table 6's size difference).
        let store = small_store(Approach::BslST);
        let (docs, _) = store.st_query(&StQuery {
            rect: GeoRect::new(20.0, 35.0, 28.0, 41.0),
            t0: DateTime::from_millis(0),
            t1: DateTime::from_millis(1_000_000_000),
        });
        assert!(docs.iter().all(|d| d.get(HILBERT_FIELD).is_none()));
    }

    #[test]
    fn zones_preserve_results_for_every_approach() {
        let q = StQuery {
            rect: GeoRect::new(21.0, 35.5, 24.0, 39.0),
            t0: DateTime::from_millis(5_000_000),
            t1: DateTime::from_millis(80_000_000),
        };
        for approach in Approach::ALL {
            let mut store = small_store(approach);
            let (before, _) = store.st_query(&q);
            store.apply_zones();
            let (after, _) = store.st_query(&q);
            assert_eq!(before.len(), after.len(), "{approach}");
            assert_eq!(store.doc_count(), 1_600, "{approach}");
        }
    }

    #[test]
    fn batched_ingest_matches_synchronous_inserts() {
        let q = StQuery {
            rect: GeoRect::new(20.0, 35.0, 28.0, 41.0),
            t0: DateTime::from_millis(0),
            t1: DateTime::from_millis(1_000_000_000),
        };
        for approach in Approach::ALL {
            let mut store = small_store(approach);
            let (before, _) = store.st_query(&q);
            // Stage a batch through the facade: augmented (hilbertIndex
            // etc.) but invisible until the commit.
            let batch: Vec<Document> = (0..50)
                .map(|i| record(10_000 + i, 21.0 + f64::from(i) * 0.01, 36.0, 5_000_000))
                .collect();
            for d in batch.iter().take(25) {
                store.stage(d.clone()).unwrap();
            }
            let (during, _) = store.st_query(&q);
            assert_eq!(during.len(), before.len(), "{approach}: staged leak");
            store.commit_batch();
            let (mid, _) = store.st_query(&q);
            assert_eq!(mid.len(), before.len() + 25, "{approach}");
            // And the one-call batch path.
            store.insert_batch(batch[25..].to_vec()).unwrap();
            let (after, _) = store.st_query(&q);
            assert_eq!(after.len(), before.len() + 50, "{approach}");
            assert_eq!(store.doc_count(), 1_650, "{approach}");
        }
    }

    #[test]
    fn insert_rejects_geo_less_documents() {
        let mut store = StStore::new(StoreConfig {
            approach: Approach::Hil,
            num_shards: 2,
            ..Default::default()
        });
        let bad = doc! {"date" => DateTime::from_millis(0)};
        assert!(store.insert(bad).is_err());
    }

    #[test]
    fn baseline_keeps_two_extra_indexes() {
        // §A.3: bsl maintains _id + compound + date; hil only _id +
        // shard-key compound.
        let bsl = small_store(Approach::BslST);
        assert_eq!(bsl.index_sizes().len(), 3);
        let hil = small_store(Approach::Hil);
        assert_eq!(hil.index_sizes().len(), 2);
    }
}
