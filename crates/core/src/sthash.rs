//! ST-Hash — the related-work baseline of §2.2 (ref. \[10\], Guan et al. 2017),
//! implemented so the paper's critique can be measured.
//!
//! ST-Hash extends GeoHashes "in a way that time is also incorporated in
//! a string representation of a one-dimensional value" with the coarse
//! time component as the **prefix**. We encode it numerically: a day
//! index in the high bits, the 26-bit GeoHash cell in the low bits.
//!
//! The paper's critique (§2.2): *"queries with high spatial selectivity
//! but low temporal selectivity cannot exploit the encoding"* — a
//! spatially tiny query spanning `D` days needs `D` separate interval
//! families (one per day prefix), whereas the Hilbert layout needs one
//! decomposition regardless of the time span. The `ablations` bench and
//! the `sthash_baseline` integration test quantify exactly that.

use crate::query::StQuery;
use crate::{DATE_FIELD, LOCATION_FIELD};
use std::time::{Duration, Instant};
use sts_document::DateTime;
use sts_geo::{cells_to_ranges, cover_rect, GeoHash, GeoPoint};
use sts_query::Filter;

/// Document field carrying the ST-Hash value.
pub const STHASH_FIELD: &str = "stHash";

/// Bits reserved for the spatial (GeoHash) component.
pub const SPACE_BITS: u32 = 26;

/// The ST-Hash of a position/time pair: `day_index << 26 | geohash`.
pub fn sthash_of(p: GeoPoint, t: DateTime) -> i64 {
    let day = t.millis().div_euclid(86_400_000);
    let cell = GeoHash::encode(p, SPACE_BITS).bits() as i64;
    (day << SPACE_BITS) | cell
}

/// Decompose a spatio-temporal query into ST-Hash intervals: the cross
/// product of day prefixes × spatial cell ranges, capped at
/// `max_intervals` by merging (which, past one day boundary, swallows
/// the *entire* globe of intervening days — the structural weakness).
pub fn sthash_intervals(query: &StQuery, max_intervals: usize) -> Vec<(i64, i64)> {
    let cells = cover_rect(&query.rect, SPACE_BITS, 20);
    let space_ranges = cells_to_ranges(&cells, SPACE_BITS);
    let d0 = query.t0.millis().div_euclid(86_400_000);
    let d1 = query.t1.millis().div_euclid(86_400_000);
    let mut out = Vec::new();
    for day in d0..=d1 {
        let base = day << SPACE_BITS;
        for &(lo, hi) in &space_ranges {
            out.push((base | lo as i64, base | hi as i64));
        }
    }
    // Merge down to the cap, bridging smallest gaps first (same policy
    // as the Hilbert budget, so the comparison is apples-to-apples).
    while out.len() > max_intervals.max(1) {
        let mut best = 0usize;
        let mut best_gap = i64::MAX;
        for i in 0..out.len() - 1 {
            let gap = out[i + 1].0 - out[i].1;
            if gap < best_gap {
                best_gap = gap;
                best = i;
            }
        }
        let merged = (out[best].0, out[best + 1].1);
        out[best] = merged;
        out.remove(best + 1);
    }
    out
}

/// Build the store filter for an ST-Hash deployment.
pub fn build_filter(query: &StQuery, max_intervals: usize) -> (Filter, Duration, usize) {
    let start = Instant::now();
    let intervals = sthash_intervals(query, max_intervals);
    let elapsed = start.elapsed();
    let n = intervals.len();
    let mut branches: Vec<Filter> = intervals
        .iter()
        .map(|&(lo, hi)| {
            Filter::And(vec![
                Filter::gte(STHASH_FIELD, lo),
                Filter::lte(STHASH_FIELD, hi),
            ])
        })
        .collect();
    if branches.is_empty() {
        branches.push(Filter::eq(STHASH_FIELD, -1i64));
    }
    let filter = Filter::And(vec![
        Filter::GeoWithin {
            path: LOCATION_FIELD.into(),
            rect: query.rect,
        },
        Filter::gte(DATE_FIELD, query.t0),
        Filter::lte(DATE_FIELD, query.t1),
        Filter::Or(branches),
    ]);
    (filter, elapsed, n)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sts_geo::GeoRect;

    fn q(days: i64) -> StQuery {
        StQuery {
            rect: GeoRect::new(23.757495, 37.987295, 23.766958, 37.992997),
            t0: DateTime::from_ymd_hms(2018, 10, 1, 0, 0, 0),
            t1: DateTime::from_ymd_hms(2018, 10, 1, 0, 0, 0).plus_millis(days * 86_400_000),
        }
    }

    #[test]
    fn encoding_orders_time_before_space() {
        let athens = GeoPoint::new(23.7275, 37.9838);
        let patras = GeoPoint::new(21.7346, 38.2466);
        let t1 = DateTime::from_ymd_hms(2018, 7, 1, 12, 0, 0);
        let t2 = DateTime::from_ymd_hms(2018, 7, 2, 0, 0, 0);
        // Different days dominate any spatial difference.
        assert!(sthash_of(patras, t1) < sthash_of(athens, t2));
        // Same day: ordered by cell.
        let same_day = sthash_of(athens, t1) >> SPACE_BITS;
        assert_eq!(sthash_of(patras, t1) >> SPACE_BITS, same_day);
    }

    #[test]
    fn interval_count_scales_with_days() {
        let one = sthash_intervals(&q(1), usize::MAX);
        let week = sthash_intervals(&q(7), usize::MAX);
        let month = sthash_intervals(&q(30), usize::MAX);
        // The paper's critique, visible: D days ⇒ ~D× the intervals for
        // the same tiny rectangle.
        assert!(
            week.len() >= 7 * one.len() / 2,
            "{} vs {}",
            week.len(),
            one.len()
        );
        assert!(month.len() >= 25 * one.len() / 2);
    }

    #[test]
    fn capped_intervals_still_cover() {
        let exact = sthash_intervals(&q(30), usize::MAX);
        let capped = sthash_intervals(&q(30), 16);
        assert!(capped.len() <= 16);
        for &(lo, hi) in &exact {
            assert!(
                capped.iter().any(|&(clo, chi)| clo <= lo && hi <= chi),
                "lost ({lo},{hi})"
            );
        }
    }

    #[test]
    fn filter_carries_interval_or() {
        let (f, _, n) = build_filter(&q(2), 64);
        assert!(n >= 2);
        let shape = sts_query::QueryShape::analyze(&f);
        let (path, ivs) = shape.int_intervals.expect("sthash intervals");
        assert_eq!(path, STHASH_FIELD);
        assert_eq!(ivs.len(), n);
    }
}
