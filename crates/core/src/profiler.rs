//! Slow-query profiler: a MongoDB-`system.profile`-style ring buffer
//! on the store.
//!
//! Every spatio-temporal query the store executes is offered to the
//! profiler; entries whose **total cost** — wall time plus the curve
//! decomposition plus any *virtual* recovery delay fault injection
//! charged to the critical path ([`QueryReport::total_time`]) — meets
//! the configured threshold are (subject to sampling) captured into a
//! bounded ring, newest-last. Each entry keeps the query shape, the
//! approach, the full [`QueryReport`] (exact per-shard stage
//! breakdowns, recovery counters) and can replay itself as a
//! [`Trace`].
//!
//! Because the threshold is judged against virtual time, chaos tests
//! profile deterministically: inject 2 s of virtual latency against a
//! 1 s threshold and the query *will* be captured, no matter how fast
//! the box is.

use crate::approach::Approach;
use crate::query::StQuery;
use crate::report::QueryReport;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Duration;
use sts_document::{doc, Document, Value};
use sts_obs::{Trace, TraceId};

/// What kind of operation a profile entry records.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum QueryKind {
    /// A plain spatio-temporal range query.
    Find,
    /// A query shaped by sort/limit options (distributed top-k).
    TopK,
    /// A `$match` + `$group` aggregation.
    Aggregate,
    /// A polygonal spatio-temporal query.
    Polygon,
}

impl QueryKind {
    /// Stable lowercase name (used in profile documents and reports).
    pub fn name(self) -> &'static str {
        match self {
            QueryKind::Find => "find",
            QueryKind::TopK => "topk",
            QueryKind::Aggregate => "aggregate",
            QueryKind::Polygon => "polygon",
        }
    }
}

/// Profiler configuration.
#[derive(Clone, Copy, Debug)]
pub struct ProfilerConfig {
    /// Master switch; disabled by default so the query path stays free
    /// of the ring's mutex unless observability is wanted.
    pub enabled: bool,
    /// Capture queries whose [`QueryReport::total_time`] is at least
    /// this (virtual time: injected fault delay counts).
    pub threshold: Duration,
    /// Fraction of above-threshold queries to keep, in `[0, 1]`.
    /// Sampling draws are deterministic in the operation sequence
    /// number, so a fixed workload profiles identically across runs.
    pub sample_rate: f64,
    /// Ring capacity; the oldest entry is evicted at the cap.
    pub capacity: usize,
}

impl Default for ProfilerConfig {
    fn default() -> Self {
        ProfilerConfig {
            enabled: false,
            threshold: Duration::from_millis(10),
            sample_rate: 1.0,
            capacity: 64,
        }
    }
}

/// One captured slow query.
#[derive(Clone, Debug)]
pub struct ProfileEntry {
    /// Operation sequence number (doubles as the trace id).
    pub op: u64,
    /// Operation kind.
    pub kind: QueryKind,
    /// The approach the store was built with.
    pub approach: Approach,
    /// The query's spatio-temporal shape (a polygon query records its
    /// bounding box).
    pub query: StQuery,
    /// The cost that was judged against the threshold:
    /// [`QueryReport::total_time`] at capture.
    pub latency: Duration,
    /// The full execution report, stage breakdowns included.
    pub report: QueryReport,
}

impl ProfileEntry {
    /// Render as a `system.profile`-style document: operation
    /// metadata, the query shape, per-shard recovery counters and the
    /// full `explain()` output.
    pub fn to_document(&self) -> Document {
        let recovery: Vec<Value> = self
            .report
            .cluster
            .per_shard
            .iter()
            .map(|s| {
                Value::Document(doc! {
                    "shard" => s.shard as i64,
                    "attempts" => i64::from(s.recovery.attempts),
                    "retries" => i64::from(s.recovery.retries),
                    "hedges" => i64::from(s.recovery.hedges),
                    "timeouts" => i64::from(s.recovery.timeouts),
                    "gaveUp" => s.recovery.gave_up,
                })
            })
            .collect();
        doc! {
            "op" => self.op as i64,
            "type" => self.kind.name(),
            "approach" => self.approach.name(),
            "micros" => i64::try_from(self.latency.as_micros()).unwrap_or(i64::MAX),
            "query" => doc! {
                "minLon" => self.query.rect.min_lon,
                "minLat" => self.query.rect.min_lat,
                "maxLon" => self.query.rect.max_lon,
                "maxLat" => self.query.rect.max_lat,
                "t0" => self.query.t0.millis(),
                "t1" => self.query.t1.millis(),
            },
            "recovery" => recovery,
            "execution" => self.report.explain(),
        }
    }

    /// Rebuild the entry's causal trace (trace id = operation number).
    pub fn trace(&self) -> Trace {
        self.report.trace(TraceId(self.op))
    }
}

struct Inner {
    config: ProfilerConfig,
    ring: VecDeque<ProfileEntry>,
}

/// The store's slow-query profiler. All methods take `&self`: the
/// query path is `&self` end to end, so capture must be too.
pub struct Profiler {
    seq: AtomicU64,
    inner: Mutex<Inner>,
}

impl Default for Profiler {
    fn default() -> Self {
        Profiler::new(ProfilerConfig::default())
    }
}

impl Profiler {
    /// A profiler with the given configuration.
    pub fn new(config: ProfilerConfig) -> Self {
        Profiler {
            seq: AtomicU64::new(0),
            inner: Mutex::new(Inner {
                config,
                ring: VecDeque::new(),
            }),
        }
    }

    /// Replace the configuration (existing entries are kept; the ring
    /// is trimmed if the new capacity is smaller).
    pub fn configure(&self, config: ProfilerConfig) {
        let mut inner = self.inner.lock().unwrap();
        inner.config = config;
        while inner.ring.len() > inner.config.capacity {
            inner.ring.pop_front();
        }
    }

    /// The current configuration.
    pub fn config(&self) -> ProfilerConfig {
        self.inner.lock().unwrap().config
    }

    /// Offer one executed query. Always advances the operation
    /// counter; captures the entry iff the profiler is enabled, the
    /// report's total time meets the threshold and the (deterministic)
    /// sampling draw keeps it. Returns the operation number.
    pub fn observe(
        &self,
        kind: QueryKind,
        approach: Approach,
        query: StQuery,
        report: &QueryReport,
    ) -> u64 {
        let op = self.seq.fetch_add(1, Ordering::Relaxed);
        let latency = report.total_time();
        let mut inner = self.inner.lock().unwrap();
        let cfg = inner.config;
        if !cfg.enabled || cfg.capacity == 0 || latency < cfg.threshold {
            return op;
        }
        if cfg.sample_rate < 1.0 && sample_draw(op) >= cfg.sample_rate {
            return op;
        }
        if inner.ring.len() == cfg.capacity {
            inner.ring.pop_front();
        }
        inner.ring.push_back(ProfileEntry {
            op,
            kind,
            approach,
            query,
            latency,
            report: report.clone(),
        });
        op
    }

    /// The captured entries, oldest first.
    pub fn entries(&self) -> Vec<ProfileEntry> {
        self.inner.lock().unwrap().ring.iter().cloned().collect()
    }

    /// The slowest captured entry.
    pub fn slowest(&self) -> Option<ProfileEntry> {
        self.inner
            .lock()
            .unwrap()
            .ring
            .iter()
            .max_by_key(|e| (e.latency, e.op))
            .cloned()
    }

    /// Drop every captured entry (the operation counter keeps going).
    pub fn clear(&self) {
        self.inner.lock().unwrap().ring.clear();
    }

    /// Number of captured entries.
    pub fn len(&self) -> usize {
        self.inner.lock().unwrap().ring.len()
    }

    /// True when nothing is captured.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The operation number most recently handed out (`None` before
    /// the first query).
    pub fn last_op(&self) -> Option<u64> {
        self.seq.load(Ordering::Relaxed).checked_sub(1)
    }
}

/// Deterministic uniform draw in `[0, 1)` from the operation number
/// (SplitMix64 finalizer — same mixing the fault injector uses).
fn sample_draw(op: u64) -> f64 {
    let mut z = op.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    (z >> 11) as f64 / (1u64 << 53) as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use sts_geo::GeoRect;

    fn q() -> StQuery {
        StQuery {
            rect: GeoRect::new(23.7, 37.9, 23.8, 38.0),
            t0: sts_document::DateTime::from_millis(0),
            t1: sts_document::DateTime::from_millis(1_000),
        }
    }

    fn report_with_wall(us: u64) -> QueryReport {
        QueryReport {
            cluster: sts_cluster::ClusterQueryReport {
                wall: Duration::from_micros(us),
                ..Default::default()
            },
            ..Default::default()
        }
    }

    #[test]
    fn disabled_profiler_captures_nothing() {
        let p = Profiler::default();
        p.observe(
            QueryKind::Find,
            Approach::Hil,
            q(),
            &report_with_wall(1_000_000),
        );
        assert!(p.is_empty());
        assert_eq!(p.last_op(), Some(0));
    }

    #[test]
    fn threshold_splits_captures() {
        let p = Profiler::new(ProfilerConfig {
            enabled: true,
            threshold: Duration::from_micros(500),
            ..Default::default()
        });
        p.observe(QueryKind::Find, Approach::Hil, q(), &report_with_wall(499));
        p.observe(QueryKind::Find, Approach::Hil, q(), &report_with_wall(500));
        p.observe(
            QueryKind::Find,
            Approach::Hil,
            q(),
            &report_with_wall(9_000),
        );
        let entries = p.entries();
        assert_eq!(entries.len(), 2);
        assert_eq!(entries[0].op, 1);
        assert_eq!(p.slowest().unwrap().op, 2);
    }

    #[test]
    fn virtual_delay_counts_toward_the_threshold() {
        let p = Profiler::new(ProfilerConfig {
            enabled: true,
            threshold: Duration::from_secs(1),
            ..Default::default()
        });
        let mut r = report_with_wall(10);
        let mut slow = sts_cluster::ShardExecution::clean(0, Default::default());
        slow.recovery.injected_latency = Duration::from_secs(2);
        r.cluster.per_shard.push(slow);
        p.observe(QueryKind::Find, Approach::BslST, q(), &r);
        assert_eq!(p.len(), 1);
        assert!(p.entries()[0].latency >= Duration::from_secs(2));
    }

    #[test]
    fn ring_evicts_oldest() {
        let p = Profiler::new(ProfilerConfig {
            enabled: true,
            threshold: Duration::ZERO,
            capacity: 3,
            ..Default::default()
        });
        for i in 0..5 {
            p.observe(
                QueryKind::Find,
                Approach::Hil,
                q(),
                &report_with_wall(i + 1),
            );
        }
        let ops: Vec<u64> = p.entries().iter().map(|e| e.op).collect();
        assert_eq!(ops, vec![2, 3, 4]);
    }

    #[test]
    fn sampling_is_deterministic_and_roughly_proportional() {
        let run = |rate: f64| {
            let p = Profiler::new(ProfilerConfig {
                enabled: true,
                threshold: Duration::ZERO,
                sample_rate: rate,
                capacity: 10_000,
            });
            for _ in 0..1_000 {
                p.observe(QueryKind::Find, Approach::Hil, q(), &report_with_wall(10));
            }
            p.entries().iter().map(|e| e.op).collect::<Vec<u64>>()
        };
        let a = run(0.3);
        let b = run(0.3);
        assert_eq!(a, b, "same ops sampled across runs");
        assert!(a.len() > 200 && a.len() < 400, "got {}", a.len());
        assert_eq!(run(1.0).len(), 1_000);
        assert!(run(0.0).is_empty());
    }

    #[test]
    fn profile_document_has_shape_and_stages() {
        let p = Profiler::new(ProfilerConfig {
            enabled: true,
            threshold: Duration::ZERO,
            ..Default::default()
        });
        p.observe(
            QueryKind::TopK,
            Approach::HilStar,
            q(),
            &report_with_wall(77),
        );
        let d = p.entries()[0].to_document();
        assert_eq!(d.get("type"), Some(&Value::String("topk".into())));
        assert_eq!(d.get("approach"), Some(&Value::String("hil*".into())));
        assert_eq!(d.get("micros"), Some(&Value::Int64(77)));
        let shape = match d.get("query") {
            Some(Value::Document(d)) => d,
            other => panic!("query: {other:?}"),
        };
        assert_eq!(shape.get("minLon"), Some(&Value::Double(23.7)));
        assert!(matches!(d.get("execution"), Some(Value::Document(_))));
    }
}
