//! Workload-aware partitioning — the paper's §6 closing future-work
//! item ("propose an adaptive, workload-aware mechanism for indexing and
//! partitioning").
//!
//! Plain zones (§4.2.4) equalize *document counts* per shard. Under a
//! skewed query workload that leaves the shards holding the hot region
//! doing most of the work. [`StStore::apply_workload_aware_zones`]
//! instead weighs every document by how many logged queries touch it and
//! draws the `$bucketAuto` boundaries over the *weighted* distribution:
//! hot regions split across more shards, cold regions coalesce.

use crate::api::StStore;
use crate::query::StQuery;
use crate::LOCATION_FIELD;
use sts_document::Document;
use sts_index::geo_point_of;

/// Per-document access weight under a logged workload: `1 +
/// #queries-that-match` (the `1` keeps never-touched documents from
/// collapsing into zero-weight regions with undefined boundaries).
pub fn access_weight(log: &[StQuery], doc: &Document) -> u64 {
    let Some(p) = geo_point_of(doc, LOCATION_FIELD) else {
        return 1;
    };
    let Some(t) = doc.get("date").and_then(sts_document::Value::as_datetime) else {
        return 1;
    };
    1 + log.iter().filter(|q| q.matches(p.lon, p.lat, t)).count() as u64
}

impl StStore {
    /// Re-zone the cluster using query-access frequencies from `log`
    /// instead of raw document counts.
    ///
    /// The zone field stays the approach's (§4.2.4): `hilbertIndex` for
    /// the Hilbert methods, `date` for the baselines.
    pub fn apply_workload_aware_zones(&mut self, log: &[StQuery]) {
        let field = self.approach().zone_field();
        let n = self.config().num_shards;
        let boundaries = self
            .cluster()
            .bucket_auto_weighted_boundaries(field, n, |doc| access_weight(log, doc));
        self.cluster_mut().apply_zones(&boundaries);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Approach, StoreConfig};
    use sts_document::{doc, DateTime, Value};
    use sts_geo::GeoRect;

    fn grid_store() -> StStore {
        let mut store = StStore::new(StoreConfig {
            approach: Approach::Hil,
            num_shards: 4,
            max_chunk_bytes: 32 * 1024,
            ..Default::default()
        });
        let mut i = 0u32;
        for x in 0..50 {
            for y in 0..50 {
                let mut d = doc! {
                    "location" => doc! {
                        "type" => "Point",
                        "coordinates" => vec![
                            Value::from(20.0 + f64::from(x) * 0.15),
                            Value::from(35.0 + f64::from(y) * 0.12),
                        ],
                    },
                    "date" => DateTime::from_millis(i64::from(i) * 60_000),
                };
                d.ensure_id(i);
                store.insert(d).unwrap();
                i += 1;
            }
        }
        store
    }

    /// A workload hammering one corner of the space.
    fn hot_corner_log() -> Vec<StQuery> {
        (0..20)
            .map(|i| StQuery {
                rect: GeoRect::new(20.0, 35.0, 21.5, 36.2),
                t0: DateTime::from_millis(0),
                t1: DateTime::from_millis(i64::from(i + 1) * 10_000_000),
            })
            .collect()
    }

    #[test]
    fn weights_reflect_query_hits() {
        let log = hot_corner_log();
        let hot = doc! {
            "location" => doc! {
                "type" => "Point",
                "coordinates" => vec![Value::from(20.5), Value::from(35.5)],
            },
            "date" => DateTime::from_millis(1_000),
        };
        let cold = doc! {
            "location" => doc! {
                "type" => "Point",
                "coordinates" => vec![Value::from(27.0), Value::from(40.0)],
            },
            "date" => DateTime::from_millis(1_000),
        };
        assert_eq!(access_weight(&log, &cold), 1);
        assert!(access_weight(&log, &hot) > 10);
        // Geo-less documents default to weight 1 instead of panicking.
        assert_eq!(access_weight(&log, &doc! {"x" => 1}), 1);
    }

    #[test]
    fn workload_aware_zones_spread_the_hot_region() {
        let log = hot_corner_log();
        let probe = &log[19]; // widest hot-corner query

        let mut plain = grid_store();
        plain.apply_zones();
        let (docs_plain, rep_plain) = plain.st_query(probe);

        let mut aware = grid_store();
        aware.apply_workload_aware_zones(&log);
        let (docs_aware, rep_aware) = aware.st_query(probe);

        assert_eq!(docs_plain.len(), docs_aware.len(), "results unchanged");
        assert!(!docs_plain.is_empty());
        // The hot region now spans more shards, so the hottest shard
        // does less of the query's work.
        assert!(
            rep_aware.cluster.nodes() >= rep_plain.cluster.nodes(),
            "hot region must not collapse onto fewer nodes: {} vs {}",
            rep_aware.cluster.nodes(),
            rep_plain.cluster.nodes()
        );
        assert!(
            rep_aware.cluster.max_docs_examined() <= rep_plain.cluster.max_docs_examined(),
            "hottest-shard work should shrink: {} vs {}",
            rep_aware.cluster.max_docs_examined(),
            rep_plain.cluster.max_docs_examined()
        );
    }

    #[test]
    fn empty_log_degenerates_to_plain_zones() {
        let mut a = grid_store();
        a.apply_workload_aware_zones(&[]);
        let mut b = grid_store();
        b.apply_zones();
        // Uniform weights → same equal-count intent. The two quantile
        // rules may cut one key apart, so allow a few documents of slack
        // per shard.
        for (x, y) in a
            .cluster()
            .docs_per_shard()
            .iter()
            .zip(b.cluster().docs_per_shard())
        {
            assert!((*x as i64 - y as i64).abs() <= 5, "{x} vs {y}");
        }
    }
}
