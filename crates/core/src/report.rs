//! Per-query reports combining cluster metrics and curve overhead.

use crate::router::RouterReport;
use std::time::Duration;
use sts_cluster::{ClusterQueryReport, ShardExecution};
use sts_document::{doc, Document, Value};
use sts_obs::{Stage, Trace, TraceId, Track};

/// Everything the paper measures for one query execution.
#[derive(Debug, Clone, Default)]
pub struct QueryReport {
    /// Scatter/gather metrics: nodes, per-shard keys/docs examined,
    /// wall time.
    pub cluster: ClusterQueryReport,
    /// Time spent decomposing the query rectangle into 1D Hilbert
    /// ranges (Table 8; zero for the baselines).
    pub hilbert_time: Duration,
    /// Number of 1D ranges the decomposition produced.
    pub hilbert_ranges: usize,
    /// Fingerprint of the exact fitted curve that served the query
    /// (`Curve::fingerprint`; `None` for the curve-less baselines).
    /// Surfaced in `explain()` and trace metadata so every report
    /// identifies the curve geometry — and, for data-fitted curves,
    /// the boundary fit — behind its covering; this is the plan-cache
    /// key component the router tier will reuse.
    pub curve_fingerprint: Option<u64>,
    /// What the router tier did for this query: plan/result cache
    /// outcomes, routing reuse, and policy-forced hedging.
    pub router: RouterReport,
}

impl QueryReport {
    /// §5.1 execution-time metric: the query's end-to-end wall time
    /// (the paper *excludes* the Hilbert decomposition here and reports
    /// it separately in Table 8, and so do we).
    pub fn execution_time(&self) -> Duration {
        self.cluster.wall
    }

    /// Cluster latency as a concurrent deployment would see it: the
    /// slowest shard bounds the response. The harness plots this (the
    /// recording machine may have fewer cores than the paper's cluster
    /// has nodes, so `cluster.wall` can degenerate to a serial sum).
    pub fn cluster_latency(&self) -> Duration {
        self.cluster.max_shard_time()
    }

    /// The query's full cost including the curve decomposition the
    /// paper reports separately (Table 8) and any virtual recovery
    /// delay fault injection charged to the slowest shard.
    pub fn total_time(&self) -> Duration {
        self.hilbert_time + self.cluster.wall + self.cluster.max_virtual_delay()
    }

    /// MongoDB-`executionStats`-style explain document: the §5.1
    /// metrics plus a per-stage timing breakdown on every touched
    /// shard. All durations are integer microseconds (truncated), so
    /// stage sums never exceed their reported totals. Virtual
    /// recovery delay appears only under its own `recoveryMicros`
    /// stage — never folded into scan time.
    pub fn explain(&self) -> Document {
        let shards: Vec<Value> = self
            .cluster
            .per_shard
            .iter()
            .map(|s| Value::Document(shard_explain(s)))
            .collect();
        let mut d = doc! {
            "nReturned" => self.cluster.n_returned() as i64,
            "executionTimeMicros" => micros(self.cluster.wall),
            "clusterLatencyMicros" => micros(self.cluster.max_shard_total_time()),
            "nodes" => self.cluster.nodes() as i64,
            "broadcast" => self.cluster.broadcast,
            "partial" => self.cluster.partial,
            "covering" => doc! {
                "micros" => micros(self.hilbert_time),
                "ranges" => self.hilbert_ranges as i64,
            },
            "routingMicros" => micros(self.cluster.routing),
            "mergeMicros" => micros(self.cluster.merge),
            "router" => doc! {
                "planCache" => self.router.plan_cache.name(),
                "resultCache" => self.router.result_cache.name(),
                "routeReused" => self.router.route_reused,
                "hedgedByPolicy" => self.router.hedged_by_policy,
            },
            "shards" => shards,
        };
        if let Some(fp) = self.curve_fingerprint {
            d.set("curveFingerprint", format!("{fp:016x}"));
        }
        d
    }

    /// Fold this query's stage breakdown into a cross-query
    /// [`sts_obs::FoldedStacks`] aggregate (semicolon-joined frame paths, values
    /// in nanoseconds of virtual stage time) — rendered by
    /// `obs-report --timeline` for `flamegraph.pl`/inferno.
    pub fn fold_stages(&self, out: &mut sts_obs::FoldedStacks) {
        let ns = |d: Duration| u64::try_from(d.as_nanos()).unwrap_or(u64::MAX);
        out.add_frames(&["stQuery", Stage::Covering.name()], ns(self.hilbert_time));
        out.add_frames(
            &["stQuery", Stage::Routing.name()],
            ns(self.cluster.routing),
        );
        out.add_frames(&["stQuery", Stage::Merge.name()], ns(self.cluster.merge));
        for s in &self.cluster.per_shard {
            let b = s.stage_breakdown();
            for (stage, d) in [
                (Stage::Recovery, b.recovery),
                (Stage::Planning, b.planning),
                (Stage::IndexScan, b.index_scan),
                (Stage::FetchFilter, b.fetch_filter),
            ] {
                out.add_frames(&["stQuery", "shardExec", stage.name()], ns(d));
            }
        }
    }

    /// Build the query's causal span tree on the virtual clock.
    ///
    /// The timeline models the *concurrent* deployment: the router runs
    /// `covering` then `routing` serially; every shard's execution then
    /// starts at the same instant on its own track and lasts that
    /// shard's `total_time()` (measured stages plus virtual recovery
    /// delay); the router's `merge` starts once the slowest shard is
    /// done. Within a shard, `recovery` (iff the fault machinery
    /// engaged) then `planning`/`indexScan`/`fetchFilter` partition the
    /// `shardExec` interval exactly.
    pub fn trace(&self, id: TraceId) -> Trace {
        let mut t = Trace::new(id);
        let covering = self.hilbert_time;
        let routing = self.cluster.routing;
        let merge = self.cluster.merge;
        let shards_start = covering + routing;
        let shard_window = self.cluster.max_shard_total_time();
        let root = t.add_root(
            "stQuery",
            Track::Router,
            Duration::ZERO,
            shards_start + shard_window + merge,
        );
        t.set_arg(root, "nReturned", self.cluster.n_returned());
        t.set_arg(root, "nodes", self.cluster.nodes());
        t.set_arg(root, "broadcast", self.cluster.broadcast);
        t.set_arg(root, "partial", self.cluster.partial);
        if let Some(fp) = self.curve_fingerprint {
            t.set_arg(root, "curveFingerprint", format!("{fp:016x}"));
        }
        if covering > Duration::ZERO || self.hilbert_ranges > 0 {
            let cov = t.add_child(
                root,
                Stage::Covering.name(),
                Track::Router,
                Duration::ZERO,
                covering,
            );
            t.set_arg(cov, "ranges", self.hilbert_ranges);
        }
        t.add_child(
            root,
            Stage::Routing.name(),
            Track::Router,
            covering,
            routing,
        );
        for s in &self.cluster.per_shard {
            let b = s.stage_breakdown();
            let track = Track::Shard(s.shard);
            let exec = t.add_child(root, "shardExec", track, shards_start, s.total_time());
            t.set_arg(exec, "shard", s.shard);
            t.set_arg(exec, "keysExamined", s.stats.keys_examined);
            t.set_arg(exec, "docsExamined", s.stats.docs_examined);
            t.set_arg(exec, "nReturned", s.stats.n_returned);
            t.set_arg(exec, "indexUsed", s.stats.index_used.as_str());
            t.set_arg(exec, "completed", s.stats.completed);
            t.set_arg(exec, "servedByReplica", s.recovery.served_by_replica);
            let mut cursor = shards_start;
            if !s.recovery.clean() {
                // The recovery stage leads: injected latency, backoff
                // waits, hedges — the time before (and around) the
                // attempt that finally answered. Zero-width when a
                // fault fired without adding virtual delay.
                let rec = t.add_child(exec, Stage::Recovery.name(), track, cursor, b.recovery);
                t.set_arg(rec, "attempts", u64::from(s.recovery.attempts));
                t.set_arg(rec, "retries", u64::from(s.recovery.retries));
                t.set_arg(rec, "hedges", u64::from(s.recovery.hedges));
                t.set_arg(rec, "timeouts", u64::from(s.recovery.timeouts));
                t.set_arg(rec, "gaveUp", s.recovery.gave_up);
                cursor += b.recovery;
            }
            t.add_child(exec, Stage::Planning.name(), track, cursor, b.planning);
            cursor += b.planning;
            t.add_child(exec, Stage::IndexScan.name(), track, cursor, b.index_scan);
            cursor += b.index_scan;
            t.add_child(
                exec,
                Stage::FetchFilter.name(),
                track,
                cursor,
                b.fetch_filter,
            );
        }
        t.add_child(
            root,
            Stage::Merge.name(),
            Track::Router,
            shards_start + shard_window,
            merge,
        );
        t
    }
}

/// One shard's explain sub-document.
fn shard_explain(s: &ShardExecution) -> Document {
    let b = s.stage_breakdown();
    doc! {
        "shard" => s.shard as i64,
        "indexUsed" => s.stats.index_used.clone(),
        "keysExamined" => s.stats.keys_examined as i64,
        "docsExamined" => s.stats.docs_examined as i64,
        "seeks" => s.stats.seeks as i64,
        "nReturned" => s.stats.n_returned as i64,
        "completed" => s.stats.completed,
        "servedByReplica" => s.recovery.served_by_replica,
        "totalMicros" => micros(s.total_time()),
        "stages" => doc! {
            "planningMicros" => micros(b.planning),
            "indexScanMicros" => micros(b.index_scan),
            "fetchFilterMicros" => micros(b.fetch_filter),
            "recoveryMicros" => micros(b.recovery),
        },
    }
}

/// Truncating micros conversion: `Σ floor(xᵢ) ≤ floor(Σ xᵢ)`, so stage
/// sums stay within reported totals.
fn micros(d: Duration) -> i64 {
    i64::try_from(d.as_micros()).unwrap_or(i64::MAX)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sts_cluster::ShardExecution;
    use sts_query::ExecutionStats;

    #[test]
    fn latency_is_the_slowest_shard() {
        let mk = |ms: u64| {
            ShardExecution::clean(
                0,
                ExecutionStats {
                    duration: Duration::from_millis(ms),
                    ..Default::default()
                },
            )
        };
        let r = QueryReport {
            cluster: ClusterQueryReport {
                per_shard: vec![mk(3), mk(11), mk(7)],
                broadcast: false,
                partial: false,
                wall: Duration::from_millis(25),
                ..Default::default()
            },
            hilbert_time: Duration::from_micros(5),
            hilbert_ranges: 4,
            curve_fingerprint: None,
            router: RouterReport::default(),
        };
        assert_eq!(r.cluster_latency(), Duration::from_millis(11));
        assert_eq!(r.execution_time(), Duration::from_millis(25));
    }

    #[test]
    fn default_report_is_empty() {
        let r = QueryReport::default();
        assert_eq!(r.cluster_latency(), Duration::ZERO);
        assert_eq!(r.hilbert_ranges, 0);
    }

    #[test]
    fn explain_carries_stage_breakdowns() {
        let mut slow = ShardExecution::clean(
            2,
            ExecutionStats {
                duration: Duration::from_micros(100),
                planning: Duration::from_micros(10),
                fetch_time: Duration::from_micros(40),
                keys_examined: 7,
                docs_examined: 3,
                n_returned: 2,
                completed: true,
                ..Default::default()
            },
        );
        slow.recovery.injected_latency = Duration::from_millis(5);
        let r = QueryReport {
            cluster: ClusterQueryReport {
                per_shard: vec![slow],
                wall: Duration::from_micros(150),
                routing: Duration::from_micros(4),
                merge: Duration::from_micros(6),
                ..Default::default()
            },
            hilbert_time: Duration::from_micros(9),
            hilbert_ranges: 4,
            curve_fingerprint: Some(0xdead_beef_0042_cafe),
            router: RouterReport::default(),
        };
        let e = r.explain();
        assert_eq!(e.get("nReturned"), Some(&Value::Int64(2)));
        assert_eq!(
            e.get("curveFingerprint"),
            Some(&Value::String("deadbeef0042cafe".into()))
        );
        assert_eq!(e.get("routingMicros"), Some(&Value::Int64(4)));
        assert_eq!(e.get("mergeMicros"), Some(&Value::Int64(6)));
        let cov = match e.get("covering") {
            Some(Value::Document(d)) => d,
            other => panic!("covering: {other:?}"),
        };
        assert_eq!(cov.get("micros"), Some(&Value::Int64(9)));
        assert_eq!(cov.get("ranges"), Some(&Value::Int64(4)));
        let shards = match e.get("shards") {
            Some(Value::Array(a)) => a,
            other => panic!("shards: {other:?}"),
        };
        assert_eq!(shards.len(), 1);
        let shard = match &shards[0] {
            Value::Document(d) => d,
            other => panic!("shard doc: {other:?}"),
        };
        let stages = match shard.get("stages") {
            Some(Value::Document(d)) => d,
            other => panic!("stages: {other:?}"),
        };
        // Every stage is present, non-negative, and the stage micros
        // sum to no more than the shard's reported total.
        let mut sum = 0i64;
        for key in [
            "planningMicros",
            "indexScanMicros",
            "fetchFilterMicros",
            "recoveryMicros",
        ] {
            match stages.get(key) {
                Some(&Value::Int64(v)) => {
                    assert!(v >= 0, "{key} negative");
                    sum += v;
                }
                other => panic!("{key}: {other:?}"),
            }
        }
        let total = match shard.get("totalMicros") {
            Some(&Value::Int64(v)) => v,
            other => panic!("totalMicros: {other:?}"),
        };
        assert!(sum <= total, "stage sum {sum} exceeds total {total}");
        // Recovery's injected delay lands in its own stage.
        assert_eq!(stages.get("recoveryMicros"), Some(&Value::Int64(5_000)));
        assert_eq!(stages.get("indexScanMicros"), Some(&Value::Int64(60)));
    }

    #[test]
    fn fold_stages_aggregates_across_queries() {
        let shard = ShardExecution::clean(
            1,
            ExecutionStats {
                duration: Duration::from_micros(100),
                planning: Duration::from_micros(10),
                fetch_time: Duration::from_micros(40),
                ..Default::default()
            },
        );
        let r = QueryReport {
            cluster: ClusterQueryReport {
                per_shard: vec![shard],
                routing: Duration::from_micros(4),
                merge: Duration::from_micros(6),
                ..Default::default()
            },
            hilbert_time: Duration::from_micros(9),
            hilbert_ranges: 4,
            curve_fingerprint: None,
            router: RouterReport::default(),
        };
        let mut f = sts_obs::FoldedStacks::new();
        r.fold_stages(&mut f);
        r.fold_stages(&mut f); // second query merges into the same stacks
        let rendered = f.render();
        assert!(rendered.contains("stQuery;covering 18000\n"), "{rendered}");
        assert!(
            rendered.contains("stQuery;shardExec;indexScan 120000\n"),
            "{rendered}"
        );
        assert!(
            rendered.contains("stQuery;shardExec;fetchFilter 80000\n"),
            "{rendered}"
        );
        // Clean shard: no recovery frame at all.
        assert!(!rendered.contains("recovery"), "{rendered}");
    }
}
