//! Per-query reports combining cluster metrics and curve overhead.

use std::time::Duration;
use sts_cluster::ClusterQueryReport;

/// Everything the paper measures for one query execution.
#[derive(Debug, Clone, Default)]
pub struct QueryReport {
    /// Scatter/gather metrics: nodes, per-shard keys/docs examined,
    /// wall time.
    pub cluster: ClusterQueryReport,
    /// Time spent decomposing the query rectangle into 1D Hilbert
    /// ranges (Table 8; zero for the baselines).
    pub hilbert_time: Duration,
    /// Number of 1D ranges the decomposition produced.
    pub hilbert_ranges: usize,
}

impl QueryReport {
    /// §5.1 execution-time metric: the query's end-to-end wall time
    /// (the paper *excludes* the Hilbert decomposition here and reports
    /// it separately in Table 8, and so do we).
    pub fn execution_time(&self) -> Duration {
        self.cluster.wall
    }

    /// Cluster latency as a concurrent deployment would see it: the
    /// slowest shard bounds the response. The harness plots this (the
    /// recording machine may have fewer cores than the paper's cluster
    /// has nodes, so `cluster.wall` can degenerate to a serial sum).
    pub fn cluster_latency(&self) -> Duration {
        self.cluster.max_shard_time()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sts_cluster::ShardExecution;
    use sts_query::ExecutionStats;

    #[test]
    fn latency_is_the_slowest_shard() {
        let mk = |ms: u64| {
            ShardExecution::clean(
                0,
                ExecutionStats {
                    duration: Duration::from_millis(ms),
                    ..Default::default()
                },
            )
        };
        let r = QueryReport {
            cluster: ClusterQueryReport {
                per_shard: vec![mk(3), mk(11), mk(7)],
                broadcast: false,
                partial: false,
                wall: Duration::from_millis(25),
            },
            hilbert_time: Duration::from_micros(5),
            hilbert_ranges: 4,
        };
        assert_eq!(r.cluster_latency(), Duration::from_millis(11));
        assert_eq!(r.execution_time(), Duration::from_millis(25));
    }

    #[test]
    fn default_report_is_empty() {
        let r = QueryReport::default();
        assert_eq!(r.cluster_latency(), Duration::ZERO);
        assert_eq!(r.hilbert_ranges, 0);
    }
}
