//! Spatio-temporal query construction per approach.

use crate::{DATE_FIELD, HILBERT_FIELD, LOCATION_FIELD};
use std::time::{Duration, Instant};
use sts_curve::{CoveringScratch, Curve, RangeBudget};
use sts_document::{DateTime, Value};
use sts_geo::GeoRect;
use sts_query::Filter;

/// Reusable Hilbert-decomposition buffers: the interval-tree arena plus
/// the covering-range list. A store owns one so repeated queries reuse
/// the same high-water-mark allocations instead of rebuilding them.
#[derive(Default)]
pub struct CoverBuffers {
    pub(crate) scratch: CoveringScratch,
    pub(crate) ranges: Vec<(u64, u64)>,
}

impl CoverBuffers {
    /// Empty buffers; they grow to their high-water mark on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// The ranges produced by the last [`compute_covering`] call.
    pub fn ranges(&self) -> &[(u64, u64)] {
        &self.ranges
    }
}

/// Run the curve's range decomposition for `rect` into `cover.ranges`,
/// returning the decomposition cost. This is the expensive half of
/// [`build_filter_with`], split out so the router's plan cache can skip
/// it on a hit (and compute it for a *quantized* rectangle on a miss)
/// while filter assembly stays exact.
pub fn compute_covering(
    rect: &GeoRect,
    grid: &dyn Curve,
    budget: RangeBudget,
    cover: &mut CoverBuffers,
) -> Duration {
    let start = Instant::now();
    cover.ranges.clear();
    grid.decompose_rect_into(rect, budget, &mut cover.scratch, &mut cover.ranges);
    start.elapsed()
}

/// Assemble the store-level filter from a query plus precomputed
/// covering ranges — the cheap half of [`build_filter_with`]. The
/// residual clauses (exact `$geoWithin` rectangle, exact `$gte`/`$lte`
/// date window) always come from `query` itself, so callers may pass
/// ranges computed for a *superset* rectangle (the router's quantized
/// plan keys) without affecting results. `ranges = None` builds the
/// curve-less baseline filter.
pub fn assemble_filter(query: &StQuery, ranges: Option<&[(u64, u64)]>) -> Filter {
    let mut clauses = vec![
        Filter::GeoWithin {
            path: LOCATION_FIELD.into(),
            rect: query.rect,
        },
        Filter::gte(DATE_FIELD, query.t0),
        Filter::lte(DATE_FIELD, query.t1),
    ];
    if let Some(ranges) = ranges {
        clauses.push(hilbert_clause(ranges));
    }
    Filter::And(clauses)
}

/// A spatio-temporal range query: "every point inside `rect` between
/// `t0` and `t1`" (both endpoints inclusive, like the paper's
/// `$gte`/`$lte`).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct StQuery {
    /// Spatial constraint.
    pub rect: GeoRect,
    /// Temporal lower bound (inclusive).
    pub t0: DateTime,
    /// Temporal upper bound (inclusive).
    pub t1: DateTime,
}

impl StQuery {
    /// Does a `(point, time)` pair satisfy the query?
    pub fn matches(&self, lon: f64, lat: f64, t: DateTime) -> bool {
        self.rect.contains(sts_geo::GeoPoint::new(lon, lat)) && t >= self.t0 && t <= self.t1
    }
}

/// Build the store-level filter for a query.
///
/// Baselines get `{location: $geoWithin, date: $gte/$lte}`. The Hilbert
/// methods additionally run the curve's range decomposition and attach
/// the `$or` of interval clauses / `$in` of single cells that §4.2.2
/// describes. Returns the filter plus the decomposition cost (the
/// quantity Table 8 reports) and the number of ranges produced.
pub fn build_filter(
    query: &StQuery,
    curve: Option<&dyn Curve>,
    budget: RangeBudget,
) -> (Filter, Duration, usize) {
    build_filter_with(query, curve, budget, &mut CoverBuffers::new())
}

/// [`build_filter`] with caller-owned decomposition buffers — the
/// store's hot path threads one [`CoverBuffers`] through every query so
/// the covering computation itself allocates nothing after warm-up.
pub fn build_filter_with(
    query: &StQuery,
    curve: Option<&dyn Curve>,
    budget: RangeBudget,
    cover: &mut CoverBuffers,
) -> (Filter, Duration, usize) {
    match curve {
        None => (assemble_filter(query, None), Duration::ZERO, 0),
        Some(grid) => {
            let hilbert_time = compute_covering(&query.rect, grid, budget, cover);
            let n = cover.ranges.len();
            (assemble_filter(query, Some(&cover.ranges)), hilbert_time, n)
        }
    }
}

/// Build the filter for a **polygonal** spatio-temporal query — the
/// paper's §6 future-work data type. The polygon's bounding box drives
/// index covering and Hilbert decomposition; the exact polygon runs as
/// the document-level refinement predicate.
pub fn build_polygon_filter(
    polygon: &sts_geo::GeoPolygon,
    t0: DateTime,
    t1: DateTime,
    curve: Option<&dyn Curve>,
    budget: RangeBudget,
) -> (Filter, Duration, usize) {
    build_polygon_filter_with(polygon, t0, t1, curve, budget, &mut CoverBuffers::new())
}

/// [`build_polygon_filter`] with caller-owned decomposition buffers.
pub fn build_polygon_filter_with(
    polygon: &sts_geo::GeoPolygon,
    t0: DateTime,
    t1: DateTime,
    curve: Option<&dyn Curve>,
    budget: RangeBudget,
    cover: &mut CoverBuffers,
) -> (Filter, Duration, usize) {
    let mut clauses = vec![
        Filter::GeoWithinPolygon {
            path: LOCATION_FIELD.into(),
            polygon: polygon.clone(),
        },
        Filter::gte(DATE_FIELD, t0),
        Filter::lte(DATE_FIELD, t1),
    ];
    let (hilbert_time, n_ranges) = match curve {
        None => (Duration::ZERO, 0),
        Some(grid) => {
            let start = Instant::now();
            cover.ranges.clear();
            grid.decompose_rect_into(
                polygon.bbox(),
                budget,
                &mut cover.scratch,
                &mut cover.ranges,
            );
            let elapsed = start.elapsed();
            let n = cover.ranges.len();
            clauses.push(hilbert_clause(&cover.ranges));
            (elapsed, n)
        }
    };
    (Filter::And(clauses), hilbert_time, n_ranges)
}

/// §4.2.2: consecutive cell values become `$gte`/`$lte` ranges inside an
/// `$or`; isolated single cells are gathered into one `$in`.
fn hilbert_clause(ranges: &[(u64, u64)]) -> Filter {
    let mut branches = Vec::new();
    let mut singles = Vec::new();
    for &(lo, hi) in ranges {
        if lo == hi {
            singles.push(Value::Int64(lo as i64));
        } else {
            branches.push(Filter::And(vec![
                Filter::gte(HILBERT_FIELD, lo as i64),
                Filter::lte(HILBERT_FIELD, hi as i64),
            ]));
        }
    }
    if !singles.is_empty() {
        branches.push(Filter::In {
            path: HILBERT_FIELD.into(),
            values: singles,
        });
    }
    if branches.is_empty() {
        // A query disjoint from the curve extent matches nothing via the
        // hilbert constraint; emit an impossible interval so routing
        // still targets (zero shards would also be fine, but MongoDB
        // sends such queries to one shard and gets nothing back).
        branches.push(Filter::eq(HILBERT_FIELD, -1i64));
    }
    Filter::Or(branches)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sts_curve::CurveGrid;
    use sts_query::QueryShape;

    fn q() -> StQuery {
        StQuery {
            rect: GeoRect::new(23.7, 37.9, 23.8, 38.0),
            t0: DateTime::from_millis(1_000),
            t1: DateTime::from_millis(9_000),
        }
    }

    #[test]
    fn baseline_filter_has_no_hilbert_clause() {
        let (f, t, n) = build_filter(&q(), None, RangeBudget::default());
        assert_eq!(t, Duration::ZERO);
        assert_eq!(n, 0);
        let shape = QueryShape::analyze(&f);
        assert!(shape.geo.is_some());
        assert!(shape.int_intervals.is_none());
        assert!(shape.range_for(DATE_FIELD).is_some());
    }

    #[test]
    fn hilbert_filter_carries_intervals() {
        let grid = CurveGrid::world(13);
        let (f, _, n) = build_filter(&q(), Some(&grid as &dyn Curve), RangeBudget::default());
        assert!(n >= 1);
        let shape = QueryShape::analyze(&f);
        let (path, ivs) = shape.int_intervals.expect("hilbert intervals");
        assert_eq!(path, HILBERT_FIELD);
        assert_eq!(ivs.len(), n);
        assert!(shape.fully_captured);
    }

    #[test]
    fn disjoint_rect_yields_impossible_clause() {
        let grid = CurveGrid::fitted(GeoRect::new(0.0, 0.0, 1.0, 1.0), 8);
        let far = StQuery {
            rect: GeoRect::new(50.0, 50.0, 51.0, 51.0),
            t0: DateTime::from_millis(0),
            t1: DateTime::from_millis(1),
        };
        let (f, _, n) = build_filter(&far, Some(&grid as &dyn Curve), RangeBudget::default());
        assert_eq!(n, 0);
        let shape = QueryShape::analyze(&f);
        let (_, ivs) = shape.int_intervals.unwrap();
        assert_eq!(ivs, vec![(-1, -1)]);
    }

    #[test]
    fn st_query_matches() {
        let query = q();
        assert!(query.matches(23.75, 37.95, DateTime::from_millis(5_000)));
        assert!(!query.matches(23.75, 37.95, DateTime::from_millis(10_000)));
        assert!(!query.matches(23.0, 37.95, DateTime::from_millis(5_000)));
    }
}
