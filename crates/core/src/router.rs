//! The router tier: covering-plan cache, hot result-page cache, and
//! admission control with latency-budget load shedding.
//!
//! At "millions of users" scale the same query shapes repeat
//! constantly, and the router — which recomputes the curve covering
//! and fans out on every query — becomes the bottleneck. This module
//! gives [`crate::StStore`] three production pieces:
//!
//! * a **covering-plan cache** ([`PlanCache`]): a sharded LRU keyed by
//!   `(approach, curve fingerprint, range budget, quantized query
//!   MBR/time window)`, holding the coalesced covering ranges and the
//!   routing decision ([`sts_cluster::RoutePlan`], generation-stamped).
//!   The fingerprint key component means two stores whose fitted
//!   SkewGeoHash boundaries differ can share one cache and never share
//!   entries;
//! * a **result-page cache** ([`ResultCache`]): exact-keyed pages of
//!   result documents stamped with the committed epoch *and* the write
//!   generation at fill time. A page is served only while both still
//!   match, so a cached page can never expose a torn or stale batch;
//! * **admission control** ([`Admission`]): per-tenant token buckets
//!   plus a shed/hedge decision driven by the SLO burn tracker and the
//!   health ledger's p99.
//!
//! Quantization makes near-identical rectangles share one plan: the
//! MBR is snapped *outward* to a `2^-quant_frac_bits`-degree grid (and
//! the time window outward to `quant_time_ms`), the covering is
//! computed for the snapped rectangle, and the exact rectangle/time
//! still run as the per-document refinement predicate — a superset
//! covering can only add false-positive index keys, never lose a
//! result.

use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};
use sts_cluster::{ClusterQueryReport, ExecutorConfig, RoutePlan};
use sts_document::{DateTime, Document};
use sts_geo::GeoRect;

use crate::approach::Approach;
use crate::query::StQuery;

/// Router-tier configuration, carried in
/// [`StoreConfig::router`](crate::StoreConfig).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RouterConfig {
    /// Covering-plan cache capacity in entries; `0` disables it.
    pub plan_cache_entries: usize,
    /// Number of independently locked LRU shards in the plan cache.
    pub plan_cache_shards: usize,
    /// Result-page cache capacity in entries; `0` disables it.
    /// Disabled by default: serving pages changes what a query
    /// *executes* (nothing), so turning it on is a deployment choice.
    pub result_cache_entries: usize,
    /// Pages holding more documents than this are never cached (the
    /// cache holds *hot* pages, not bulk exports).
    pub result_cache_max_docs: usize,
    /// Fractional bits of the plan-key MBR quantization grid: cells of
    /// `2^-n` degrees, snapped outward. `0` keys on the exact
    /// coordinate bits (no sharing across nearby rectangles).
    pub quant_frac_bits: u32,
    /// Time-window quantization step in milliseconds (snapped
    /// outward); `0` keys on exact millis.
    pub quant_time_ms: i64,
    /// Admission control and load shedding.
    pub admission: AdmissionConfig,
    /// Work-stealing shard-executor tunables, passed to the cluster.
    pub executor: ExecutorConfig,
}

impl Default for RouterConfig {
    fn default() -> Self {
        RouterConfig {
            plan_cache_entries: 1024,
            plan_cache_shards: 8,
            result_cache_entries: 0,
            result_cache_max_docs: 4096,
            quant_frac_bits: 8,
            quant_time_ms: 60_000,
            admission: AdmissionConfig::default(),
            executor: ExecutorConfig::default(),
        }
    }
}

/// Admission-control policy: per-tenant token buckets plus the
/// latency-budget shed/hedge decision.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct AdmissionConfig {
    /// Master switch; off makes `st_query_admitted` equivalent to
    /// `st_query` (plus tenancy bookkeeping).
    pub enabled: bool,
    /// Token-bucket capacity per tenant (burst allowance).
    pub tenant_burst: f64,
    /// Token refill rate per tenant per second of wall time. `0`
    /// freezes buckets — deterministic tests drive shedding this way.
    pub tenant_rate_per_sec: f64,
    /// The latency budget: when the health ledger's p99 exceeds it the
    /// router escalates (hedge, then shed as burn confirms).
    pub latency_budget: Duration,
    /// SLO burn rate (from the timeline's burn tracker) above which an
    /// over-budget p99 sheds instead of hedging.
    pub shed_burn_threshold: f64,
    /// Minimum ledger observations before latency-budget decisions
    /// engage (a cold ledger's p99 is noise).
    pub min_observations: u64,
}

impl Default for AdmissionConfig {
    fn default() -> Self {
        AdmissionConfig {
            enabled: false,
            tenant_burst: 64.0,
            tenant_rate_per_sec: 128.0,
            latency_budget: Duration::from_millis(50),
            shed_burn_threshold: 2.0,
            min_observations: 64,
        }
    }
}

/// Per-query cache outcome, carried in
/// [`RouterReport`] and rendered by `explain()`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum CacheOutcome {
    /// The cache was disabled or the query shape is uncacheable.
    #[default]
    Bypass,
    /// No entry; the query computed and filled one.
    Miss,
    /// Served from the cache.
    Hit,
    /// An entry existed but was invalidated (epoch/write-generation
    /// moved on); the query recomputed and refilled it.
    Stale,
}

impl CacheOutcome {
    /// Stable lowercase name for explain documents and JSON.
    pub fn name(self) -> &'static str {
        match self {
            CacheOutcome::Bypass => "bypass",
            CacheOutcome::Miss => "miss",
            CacheOutcome::Hit => "hit",
            CacheOutcome::Stale => "stale",
        }
    }
}

/// What the router tier did for one query — stitched into
/// [`QueryReport`](crate::QueryReport).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RouterReport {
    /// Covering-plan cache outcome.
    pub plan_cache: CacheOutcome,
    /// Result-page cache outcome.
    pub result_cache: CacheOutcome,
    /// Whether a cached routing decision was replayed (vs recomputed).
    pub route_reused: bool,
    /// Whether the shed/hedge policy forced hedged reads on.
    pub hedged_by_policy: bool,
}

/// Why the router refused a query.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ShedReason {
    /// The tenant's token bucket is empty.
    TenantBudget,
    /// The cluster is over its latency budget and burning SLO budget
    /// fast enough that adding load would make it worse.
    LatencyBudget,
}

/// A shed query: who was refused and why.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Shed {
    /// The tenant whose query was refused.
    pub tenant: String,
    /// Why.
    pub reason: ShedReason,
}

impl std::fmt::Display for Shed {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.reason {
            ShedReason::TenantBudget => {
                write!(f, "tenant `{}` over its admission budget", self.tenant)
            }
            ShedReason::LatencyBudget => write!(
                f,
                "cluster over latency budget; query from `{}` shed",
                self.tenant
            ),
        }
    }
}

impl std::error::Error for Shed {}

// ---------------------------------------------------------------------
// Sharded LRU
// ---------------------------------------------------------------------

/// Hit/miss/evict counters for one cache, cheap to snapshot.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheCounters {
    /// Lookups served from the cache.
    pub hits: u64,
    /// Lookups that found nothing.
    pub misses: u64,
    /// Entries evicted by LRU pressure.
    pub evictions: u64,
    /// Entries inserted (fills + refreshes).
    pub insertions: u64,
    /// Entries found but invalidated by their stamp (result cache).
    pub stale: u64,
}

impl CacheCounters {
    /// Hit ratio over decided lookups (hits + misses + stale); `0.0`
    /// before any lookup.
    pub fn hit_ratio(&self) -> f64 {
        let total = self.hits + self.misses + self.stale;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

const NIL: usize = usize::MAX;

struct LruSlot<K, V> {
    key: K,
    val: V,
    prev: usize,
    next: usize,
}

/// One independently locked LRU shard: intrusive doubly linked list
/// over a slot arena, `HashMap` for key lookup.
struct LruShard<K, V> {
    map: HashMap<K, usize>,
    slots: Vec<LruSlot<K, V>>,
    free: Vec<usize>,
    head: usize,
    tail: usize,
    capacity: usize,
}

impl<K: Hash + Eq + Clone, V: Clone> LruShard<K, V> {
    fn new(capacity: usize) -> Self {
        LruShard {
            map: HashMap::new(),
            slots: Vec::new(),
            free: Vec::new(),
            head: NIL,
            tail: NIL,
            capacity: capacity.max(1),
        }
    }

    fn unlink(&mut self, i: usize) {
        let (prev, next) = (self.slots[i].prev, self.slots[i].next);
        if prev == NIL {
            self.head = next;
        } else {
            self.slots[prev].next = next;
        }
        if next == NIL {
            self.tail = prev;
        } else {
            self.slots[next].prev = prev;
        }
    }

    fn push_front(&mut self, i: usize) {
        self.slots[i].prev = NIL;
        self.slots[i].next = self.head;
        if self.head != NIL {
            self.slots[self.head].prev = i;
        }
        self.head = i;
        if self.tail == NIL {
            self.tail = i;
        }
    }

    fn get(&mut self, key: &K) -> Option<V> {
        let &i = self.map.get(key)?;
        self.unlink(i);
        self.push_front(i);
        Some(self.slots[i].val.clone())
    }

    /// Insert or overwrite; returns whether an LRU eviction happened.
    fn insert(&mut self, key: K, val: V) -> bool {
        if let Some(&i) = self.map.get(&key) {
            self.slots[i].val = val;
            self.unlink(i);
            self.push_front(i);
            return false;
        }
        let mut evicted = false;
        if self.map.len() >= self.capacity {
            let lru = self.tail;
            debug_assert_ne!(lru, NIL);
            self.unlink(lru);
            self.map.remove(&self.slots[lru].key);
            self.free.push(lru);
            evicted = true;
        }
        let i = match self.free.pop() {
            Some(i) => {
                self.slots[i] = LruSlot {
                    key: key.clone(),
                    val,
                    prev: NIL,
                    next: NIL,
                };
                i
            }
            None => {
                self.slots.push(LruSlot {
                    key: key.clone(),
                    val,
                    prev: NIL,
                    next: NIL,
                });
                self.slots.len() - 1
            }
        };
        self.map.insert(key, i);
        self.push_front(i);
        evicted
    }

    fn remove(&mut self, key: &K) -> bool {
        match self.map.remove(key) {
            Some(i) => {
                self.unlink(i);
                self.free.push(i);
                true
            }
            None => false,
        }
    }
}

/// A sharded LRU cache: `shards` independently locked LRUs, keys
/// hashed to a shard, atomic hit/miss/evict counters. `&self`
/// throughout, so stores can consult it on the read path.
pub struct ShardedLru<K, V> {
    shards: Vec<Mutex<LruShard<K, V>>>,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    insertions: AtomicU64,
    stale: AtomicU64,
}

impl<K: Hash + Eq + Clone, V: Clone> ShardedLru<K, V> {
    /// A cache of ~`capacity` total entries across `shards` locks.
    pub fn new(capacity: usize, shards: usize) -> Self {
        let shards = shards.max(1);
        let per_shard = capacity.div_ceil(shards).max(1);
        ShardedLru {
            shards: (0..shards)
                .map(|_| Mutex::new(LruShard::new(per_shard)))
                .collect(),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            insertions: AtomicU64::new(0),
            stale: AtomicU64::new(0),
        }
    }

    fn shard_of(&self, key: &K) -> &Mutex<LruShard<K, V>> {
        let mut h = std::collections::hash_map::DefaultHasher::new();
        key.hash(&mut h);
        &self.shards[(h.finish() as usize) % self.shards.len()]
    }

    /// Look a key up, refreshing its recency. Counts a hit or miss.
    pub fn get(&self, key: &K) -> Option<V> {
        let got = self
            .shard_of(key)
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .get(key);
        match got {
            Some(_) => self.hits.fetch_add(1, Ordering::Relaxed),
            None => self.misses.fetch_add(1, Ordering::Relaxed),
        };
        got
    }

    /// Insert (or refresh) an entry, evicting the shard's LRU entry if
    /// the shard is full.
    pub fn insert(&self, key: K, val: V) {
        let evicted = self
            .shard_of(&key)
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .insert(key, val);
        self.insertions.fetch_add(1, Ordering::Relaxed);
        if evicted {
            self.evictions.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Drop an entry (stamp invalidation). Converts the preceding
    /// `get`'s hit into a stale count, so hit ratios reflect *served*
    /// pages only.
    pub fn invalidate(&self, key: &K) {
        let removed = self
            .shard_of(key)
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .remove(key);
        if removed {
            self.stale.fetch_add(1, Ordering::Relaxed);
            self.hits.fetch_sub(1, Ordering::Relaxed);
        }
    }

    /// Live entry count (sums every shard; diagnostic, not hot-path).
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| {
                s.lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner)
                    .map
                    .len()
            })
            .sum()
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Snapshot the counters.
    pub fn counters(&self) -> CacheCounters {
        CacheCounters {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            insertions: self.insertions.load(Ordering::Relaxed),
            stale: self.stale.load(Ordering::Relaxed),
        }
    }
}

// ---------------------------------------------------------------------
// Plan cache
// ---------------------------------------------------------------------

/// Covering-plan cache key: the full identity of a covering plan. Two
/// stores agree on an entry only when the approach, the *fitted* curve
/// (fingerprint folds SkewGeoHash bucket boundaries in), the range
/// budget and the quantized query window all match.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct PlanKey {
    approach: u8,
    fingerprint: u64,
    max_ranges: usize,
    /// Quantized MBR corner coordinates as `f64` bit patterns.
    rect: [u64; 4],
    /// Quantized time window in millis; `[0, 0]` for approaches whose
    /// covering and routing ignore time (the curve methods route on
    /// `hilbertIndex`, and a rect covering is time-independent).
    time: [i64; 2],
}

impl PlanKey {
    /// Build the key and the (outward-)quantized rectangle the
    /// covering must be computed for.
    pub fn new(
        approach: Approach,
        fingerprint: Option<u64>,
        max_ranges: usize,
        query: &StQuery,
        cfg: &RouterConfig,
    ) -> (PlanKey, GeoRect) {
        let rect = quantize_rect(&query.rect, cfg.quant_frac_bits);
        let time = if approach.uses_hilbert() {
            [0, 0]
        } else {
            quantize_time(query.t0, query.t1, cfg.quant_time_ms)
        };
        (
            PlanKey {
                approach: approach as u8,
                fingerprint: fingerprint.unwrap_or(0),
                max_ranges,
                rect: [
                    rect.min_lon.to_bits(),
                    rect.min_lat.to_bits(),
                    rect.max_lon.to_bits(),
                    rect.max_lat.to_bits(),
                ],
                time,
            },
            rect,
        )
    }
}

/// Snap a rectangle *outward* to the `2^-bits`-degree grid. `bits = 0`
/// keys on the exact rectangle.
fn quantize_rect(rect: &GeoRect, bits: u32) -> GeoRect {
    if bits == 0 {
        return *rect;
    }
    let scale = f64::from(1u32 << bits.min(30));
    GeoRect::new(
        (rect.min_lon * scale).floor() / scale,
        (rect.min_lat * scale).floor() / scale,
        (rect.max_lon * scale).ceil() / scale,
        (rect.max_lat * scale).ceil() / scale,
    )
}

/// Snap a time window *outward* to `step_ms` boundaries.
fn quantize_time(t0: DateTime, t1: DateTime, step_ms: i64) -> [i64; 2] {
    if step_ms <= 0 {
        return [t0.millis(), t1.millis()];
    }
    [
        t0.millis().div_euclid(step_ms) * step_ms,
        t1.millis().div_euclid(step_ms) * step_ms + (step_ms - 1),
    ]
}

/// A cached covering plan: the coalesced ranges for the quantized
/// rectangle, plus the generation-stamped routing decision.
#[derive(Clone)]
pub struct PlanEntry {
    /// Coalesced covering ranges (empty for the curve-less baselines).
    pub ranges: Arc<Vec<(u64, u64)>>,
    /// The routing decision computed for this plan's filter. Replayed
    /// only while its generation matches the live chunk map.
    pub route: Arc<RoutePlan>,
}

/// The covering-plan cache. Shareable across stores (`Arc`): one
/// router process fronting many collections keys everything by
/// approach + curve fingerprint, so distinct fits never collide.
pub type PlanCache = ShardedLru<PlanKey, PlanEntry>;

// ---------------------------------------------------------------------
// Result cache
// ---------------------------------------------------------------------

/// Result-page cache key: the *exact* query identity (no
/// quantization — pages are verbatim result sets).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct ResultKey {
    approach: u8,
    fingerprint: u64,
    max_ranges: usize,
    rect: [u64; 4],
    time: [i64; 2],
}

impl ResultKey {
    /// Build the exact-identity key for a find query.
    pub fn new(
        approach: Approach,
        fingerprint: Option<u64>,
        max_ranges: usize,
        query: &StQuery,
    ) -> ResultKey {
        ResultKey {
            approach: approach as u8,
            fingerprint: fingerprint.unwrap_or(0),
            max_ranges,
            rect: [
                query.rect.min_lon.to_bits(),
                query.rect.min_lat.to_bits(),
                query.rect.max_lon.to_bits(),
                query.rect.max_lat.to_bits(),
            ],
            time: [query.t0.millis(), query.t1.millis()],
        }
    }
}

/// A cached result page: the documents, the execution's counter
/// template, and the data-version stamp it is valid for.
#[derive(Clone)]
pub struct ResultEntry {
    /// The page.
    pub docs: Arc<Vec<Document>>,
    /// The fill execution's cluster report. Served hits replay its
    /// *counters* (keys/docs examined, nReturned — they describe the
    /// page) with all timing and recovery zeroed (no shard ran).
    pub report: Arc<ClusterQueryReport>,
    /// Number of covering ranges behind the page (report metadata).
    pub ranges: usize,
    /// Committed epoch at fill time.
    pub epoch: u64,
    /// Write generation at fill time.
    pub writes: u64,
}

impl ResultEntry {
    /// Is the entry still valid at the given data version?
    pub fn valid_at(&self, epoch: u64, writes: u64) -> bool {
        self.epoch == epoch && self.writes == writes
    }

    /// The cluster report a served hit carries: the fill execution's
    /// counters with zeroed timing, clean recovery, and the lookup's
    /// wall time.
    pub fn hit_report(&self, wall: Duration) -> ClusterQueryReport {
        let mut r = (*self.report).clone();
        for s in &mut r.per_shard {
            s.stats.duration = Duration::ZERO;
            s.stats.planning = Duration::ZERO;
            s.stats.fetch_time = Duration::ZERO;
            s.stats.allocations = 0;
            s.recovery = Default::default();
            s.recovery.attempts = 1;
        }
        r.wall = wall;
        r.routing = Duration::ZERO;
        r.merge = Duration::ZERO;
        r
    }
}

/// The result-page cache.
pub type ResultCache = ShardedLru<ResultKey, ResultEntry>;

// ---------------------------------------------------------------------
// Admission control
// ---------------------------------------------------------------------

struct Bucket {
    tokens: f64,
    last: Instant,
}

/// The admission decision for one query.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum AdmissionDecision {
    /// Run normally.
    Admit,
    /// Run, but with hedged reads forced on (tail over budget, burn
    /// still tolerable).
    AdmitHedged,
    /// Refuse.
    Shed(Shed),
}

/// Per-tenant token buckets plus the latency-budget shed/hedge policy.
/// `&self` throughout (interior mutability) — admission runs on the
/// read path.
pub struct Admission {
    config: AdmissionConfig,
    buckets: Mutex<HashMap<String, Bucket>>,
    sheds: AtomicU64,
    hedges: AtomicU64,
}

impl Admission {
    /// Build from policy.
    pub fn new(config: AdmissionConfig) -> Self {
        Admission {
            config,
            buckets: Mutex::new(HashMap::new()),
            sheds: AtomicU64::new(0),
            hedges: AtomicU64::new(0),
        }
    }

    /// The active policy.
    pub fn config(&self) -> &AdmissionConfig {
        &self.config
    }

    /// Queries shed so far.
    pub fn sheds(&self) -> u64 {
        self.sheds.load(Ordering::Relaxed)
    }

    /// Queries escalated to hedged reads so far.
    pub fn hedges(&self) -> u64 {
        self.hedges.load(Ordering::Relaxed)
    }

    /// Decide one query's fate. `p99`/`observations` come from the
    /// health ledger, `burn` from the SLO burn tracker (`None` when no
    /// SLO is armed — then only a hard 2× budget overrun sheds).
    pub fn decide(
        &self,
        tenant: &str,
        p99: Duration,
        observations: u64,
        burn: Option<f64>,
    ) -> AdmissionDecision {
        if !self.config.enabled {
            return AdmissionDecision::Admit;
        }
        if !self.take_token(tenant) {
            self.sheds.fetch_add(1, Ordering::Relaxed);
            return AdmissionDecision::Shed(Shed {
                tenant: tenant.to_string(),
                reason: ShedReason::TenantBudget,
            });
        }
        if observations >= self.config.min_observations && p99 > self.config.latency_budget {
            let over_burn = match burn {
                Some(b) => b >= self.config.shed_burn_threshold,
                // No SLO armed: shed only on a hard 2× overrun.
                None => p99 > self.config.latency_budget * 2,
            };
            if over_burn {
                self.sheds.fetch_add(1, Ordering::Relaxed);
                return AdmissionDecision::Shed(Shed {
                    tenant: tenant.to_string(),
                    reason: ShedReason::LatencyBudget,
                });
            }
            self.hedges.fetch_add(1, Ordering::Relaxed);
            return AdmissionDecision::AdmitHedged;
        }
        AdmissionDecision::Admit
    }

    /// Refill (wall-clock) and take one token; `false` = bucket empty.
    fn take_token(&self, tenant: &str) -> bool {
        let mut buckets = self
            .buckets
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let now = Instant::now();
        let b = buckets.entry(tenant.to_string()).or_insert(Bucket {
            tokens: self.config.tenant_burst,
            last: now,
        });
        if self.config.tenant_rate_per_sec > 0.0 {
            let dt = now.duration_since(b.last).as_secs_f64();
            b.tokens =
                (b.tokens + dt * self.config.tenant_rate_per_sec).min(self.config.tenant_burst);
        }
        b.last = now;
        if b.tokens >= 1.0 {
            b.tokens -= 1.0;
            true
        } else {
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lru_evicts_least_recently_used() {
        let c: ShardedLru<u32, u32> = ShardedLru::new(2, 1);
        c.insert(1, 10);
        c.insert(2, 20);
        assert_eq!(c.get(&1), Some(10)); // 2 is now LRU
        c.insert(3, 30);
        assert_eq!(c.get(&2), None, "LRU entry should have been evicted");
        assert_eq!(c.get(&1), Some(10));
        assert_eq!(c.get(&3), Some(30));
        let n = c.counters();
        assert_eq!(n.evictions, 1);
        assert_eq!(n.insertions, 3);
        assert_eq!(n.hits, 3);
        assert_eq!(n.misses, 1);
    }

    #[test]
    fn lru_overwrite_refreshes_without_evicting() {
        let c: ShardedLru<u32, u32> = ShardedLru::new(2, 1);
        c.insert(1, 10);
        c.insert(2, 20);
        c.insert(1, 11); // overwrite, no eviction
        assert_eq!(c.counters().evictions, 0);
        assert_eq!(c.get(&1), Some(11));
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn invalidate_reclassifies_the_hit_as_stale() {
        let c: ShardedLru<u32, u32> = ShardedLru::new(4, 2);
        c.insert(1, 10);
        assert_eq!(c.get(&1), Some(10));
        c.invalidate(&1);
        assert_eq!(c.get(&1), None);
        let n = c.counters();
        assert_eq!(n.hits, 0);
        assert_eq!(n.stale, 1);
        assert_eq!(n.misses, 1);
        assert!(c.is_empty());
    }

    #[test]
    fn quantized_rect_contains_the_original() {
        let r = GeoRect::new(23.7213, 37.9838, 24.0031, 38.1007);
        for bits in [0, 4, 8, 12] {
            let q = quantize_rect(&r, bits);
            assert!(q.min_lon <= r.min_lon);
            assert!(q.min_lat <= r.min_lat);
            assert!(q.max_lon >= r.max_lon);
            assert!(q.max_lat >= r.max_lat);
            let cell = 1.0 / f64::from(1u32 << bits.min(30));
            assert!(q.max_lon - r.max_lon <= cell);
        }
        assert_eq!(quantize_rect(&r, 0), r);
    }

    #[test]
    fn quantized_time_contains_the_original_window() {
        let [lo, hi] = quantize_time(
            DateTime::from_millis(61_500),
            DateTime::from_millis(178_200),
            60_000,
        );
        assert_eq!(lo, 60_000);
        assert_eq!(hi, 179_999);
        // Negative millis snap downward too (div_euclid).
        let [lo, _] = quantize_time(
            DateTime::from_millis(-1_500),
            DateTime::from_millis(0),
            60_000,
        );
        assert_eq!(lo, -60_000);
    }

    #[test]
    fn plan_keys_separate_fingerprints_budgets_and_approaches() {
        let q = StQuery {
            rect: GeoRect::new(23.0, 37.0, 24.0, 38.0),
            t0: DateTime::from_millis(0),
            t1: DateTime::from_millis(1_000),
        };
        let cfg = RouterConfig::default();
        let (a, _) = PlanKey::new(Approach::Hil, Some(1), 64, &q, &cfg);
        let (b, _) = PlanKey::new(Approach::Hil, Some(2), 64, &q, &cfg);
        let (c, _) = PlanKey::new(Approach::Hil, Some(1), 32, &q, &cfg);
        let (d, _) = PlanKey::new(Approach::HilStar, Some(1), 64, &q, &cfg);
        assert_ne!(a, b, "fingerprint must separate entries");
        assert_ne!(a, c, "budget must separate entries");
        assert_ne!(a, d, "approach must separate entries");
        let (a2, _) = PlanKey::new(Approach::Hil, Some(1), 64, &q, &cfg);
        assert_eq!(a, a2);
    }

    #[test]
    fn baseline_plan_keys_fold_the_time_window_in() {
        // Baselines route on `date`: different (quantized) windows must
        // not share a routing plan. Curve methods route on the curve
        // value: the window is irrelevant and deliberately excluded.
        let mk = |t0: i64, t1: i64| StQuery {
            rect: GeoRect::new(23.0, 37.0, 24.0, 38.0),
            t0: DateTime::from_millis(t0),
            t1: DateTime::from_millis(t1),
        };
        let cfg = RouterConfig::default();
        let (a, _) = PlanKey::new(Approach::BslST, None, 64, &mk(0, 1_000), &cfg);
        let (b, _) = PlanKey::new(Approach::BslST, None, 64, &mk(7_200_000, 9_000_000), &cfg);
        assert_ne!(a, b);
        let (h1, _) = PlanKey::new(Approach::Hil, Some(9), 64, &mk(0, 1_000), &cfg);
        let (h2, _) = PlanKey::new(Approach::Hil, Some(9), 64, &mk(7_200_000, 9_000_000), &cfg);
        assert_eq!(h1, h2);
    }

    #[test]
    fn token_bucket_sheds_after_burst_with_zero_refill() {
        let a = Admission::new(AdmissionConfig {
            enabled: true,
            tenant_burst: 3.0,
            tenant_rate_per_sec: 0.0,
            ..AdmissionConfig::default()
        });
        for _ in 0..3 {
            assert_eq!(
                a.decide("t1", Duration::ZERO, 0, None),
                AdmissionDecision::Admit
            );
        }
        match a.decide("t1", Duration::ZERO, 0, None) {
            AdmissionDecision::Shed(s) => assert_eq!(s.reason, ShedReason::TenantBudget),
            other => panic!("expected shed, got {other:?}"),
        }
        // Another tenant's bucket is untouched.
        assert_eq!(
            a.decide("t2", Duration::ZERO, 0, None),
            AdmissionDecision::Admit
        );
        assert_eq!(a.sheds(), 1);
    }

    #[test]
    fn latency_budget_hedges_then_sheds_on_burn() {
        let cfg = AdmissionConfig {
            enabled: true,
            latency_budget: Duration::from_millis(10),
            shed_burn_threshold: 2.0,
            min_observations: 4,
            ..AdmissionConfig::default()
        };
        let a = Admission::new(cfg);
        let over = Duration::from_millis(25);
        // Below min observations: admit.
        assert_eq!(a.decide("t", over, 3, Some(9.0)), AdmissionDecision::Admit);
        // Over budget, low burn: hedge.
        assert_eq!(
            a.decide("t", over, 10, Some(0.5)),
            AdmissionDecision::AdmitHedged
        );
        // Over budget, burning: shed.
        match a.decide("t", over, 10, Some(5.0)) {
            AdmissionDecision::Shed(s) => assert_eq!(s.reason, ShedReason::LatencyBudget),
            other => panic!("expected shed, got {other:?}"),
        }
        // No SLO armed: only a 2× overrun sheds.
        assert_eq!(
            a.decide("t", Duration::from_millis(15), 10, None),
            AdmissionDecision::AdmitHedged
        );
        match a.decide("t", Duration::from_millis(25), 10, None) {
            AdmissionDecision::Shed(s) => assert_eq!(s.reason, ShedReason::LatencyBudget),
            other => panic!("expected shed, got {other:?}"),
        }
        assert_eq!(a.hedges(), 2);
        assert_eq!(a.sheds(), 2);
    }
}
