//! Store configuration.

use crate::approach::Approach;
use crate::router::RouterConfig;
use sts_cluster::{LiveBalancerConfig, RecoveryPolicy};
use sts_curve::{CurveFamily, RangeBudget};
use sts_geo::{GeoPoint, GeoRect};
use sts_query::Planner;

/// Everything needed to deploy one sharded spatio-temporal store.
#[derive(Clone, Debug)]
pub struct StoreConfig {
    /// Which method (§5.1) to run.
    pub approach: Approach,
    /// Number of shards (the paper uses 12).
    pub num_shards: usize,
    /// Chunk split threshold in bytes (64 MB in MongoDB; scale with
    /// your data so chunk counts stay realistic).
    pub max_chunk_bytes: u64,
    /// Hilbert curve order, bits per axis (paper: 13).
    pub curve_order: u32,
    /// Which curve family the curve-based approaches (`hil`/`hil*`) run
    /// on. Defaults to Hilbert — the paper's configuration; the
    /// alternatives (Z-order, onion, skew-adaptive GeoHash) plug into
    /// the identical `hilbertIndex` key layout and shard-key machinery.
    pub curve: CurveFamily,
    /// Training sample for data-fitted curve families (skew GeoHash
    /// bucket-boundary fitting). Ignored by the analytic families; an
    /// empty sample degrades fitted families to uniform buckets.
    pub curve_sample: Vec<GeoPoint>,
    /// GeoHash precision of 2dsphere index keys (MongoDB default 26).
    pub geo_bits: u32,
    /// Data MBR — the extent `hil*` fits its curve to. Ignored by the
    /// other approaches.
    pub data_mbr: GeoRect,
    /// Budget for Hilbert range decomposition per query (§4.2.2's
    /// `$or` size).
    pub range_budget: RangeBudget,
    /// Per-shard query planner settings.
    pub planner: Planner,
    /// Router fault tolerance: per-shard timeouts, bounded backoff
    /// retries, hedged reads.
    pub recovery: RecoveryPolicy,
    /// Seed for deterministic failpoint draws (chaos testing).
    pub fault_seed: u64,
    /// Live-balancer policy applied at every ingest-batch commit.
    pub balancer: LiveBalancerConfig,
    /// Router tier: plan/result caching, the work-stealing shard
    /// executor, and admission control.
    pub router: RouterConfig,
}

impl Default for StoreConfig {
    fn default() -> Self {
        StoreConfig {
            approach: Approach::Hil,
            num_shards: 12,
            max_chunk_bytes: 640 * 1024,
            curve_order: sts_curve::PAPER_CURVE_ORDER,
            curve: CurveFamily::default(),
            curve_sample: Vec::new(),
            geo_bits: sts_geo::DEFAULT_GEOHASH_BITS,
            // The paper's real data set MBR (§5.1) — a sensible default
            // for examples; override for your data.
            data_mbr: GeoRect::new(19.632533, 34.929233, 28.245285, 41.757797),
            range_budget: RangeBudget::default(),
            planner: Planner::default(),
            recovery: RecoveryPolicy::default(),
            fault_seed: 0x5EED_FA17,
            balancer: LiveBalancerConfig::default(),
            router: RouterConfig::default(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper_constants() {
        let c = StoreConfig::default();
        assert_eq!(c.num_shards, 12);
        assert_eq!(c.curve_order, 13);
        assert_eq!(c.geo_bits, 26);
        assert_eq!(c.curve, CurveFamily::Hilbert);
        assert!(c.curve_sample.is_empty());
    }
}
