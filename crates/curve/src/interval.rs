//! Augmented interval tree for covering-range coalescing.
//!
//! The block decomposition of a query rectangle emits aligned quadtree
//! blocks in *visit* order, not curve order, and neighbouring blocks are
//! frequently contiguous in index space. The old pipeline collected every
//! raw block, sorted, and merged — O(n log n) with a full re-sort per
//! query and no structure to reuse. This tree keeps the covering merged
//! *as it is built*: each insert locates its neighbours, absorbs any
//! stored interval that overlaps or is adjacent (`hi + 1 == lo` counts),
//! and stores one coalesced interval, so an in-order walk yields the
//! final sorted, disjoint, non-adjacent covering with no post-pass.
//!
//! Structurally this is a treap over `lo` (deterministic SplitMix64
//! priorities keep it balanced without an RNG), augmented with the
//! subtree-maximum endpoint `max_hi` — the classic interval-tree
//! augmentation — which serves stabbing queries ([`IntervalTree::covers`])
//! and prunes descents. Nodes live in an arena (`Vec` + free list) with
//! `u32` links, so a cleared tree retains its capacity: the hot query
//! path re-uses one tree per store and performs no steady-state heap
//! allocation while building coverings.

/// Sentinel child link.
const NIL: u32 = u32::MAX;

struct Node {
    lo: u64,
    hi: u64,
    /// Largest `hi` in this node's subtree (interval-tree augmentation).
    max_hi: u64,
    prio: u64,
    left: u32,
    right: u32,
}

/// A self-coalescing set of inclusive `u64` intervals.
///
/// Invariant: stored intervals are pairwise disjoint *and* non-adjacent
/// (consecutive intervals satisfy `next.lo > cur.hi + 1`); inserts that
/// would violate this are merged into one interval.
///
/// # Example
///
/// ```
/// use sts_curve::IntervalTree;
///
/// let mut t = IntervalTree::new();
/// t.insert(10, 15);
/// t.insert(0, 3);
/// t.insert(16, 20); // adjacent to (10, 15): merged
/// assert_eq!(t.len(), 2);
/// assert!(t.covers(18) && !t.covers(5));
/// let mut out = Vec::new();
/// t.drain_into(&mut out);
/// assert_eq!(out, vec![(0, 3), (10, 20)]);
/// ```
#[derive(Default)]
pub struct IntervalTree {
    nodes: Vec<Node>,
    free: Vec<u32>,
    root: u32,
    len: usize,
    seq: u64,
    /// Reusable traversal stack for the in-order drain.
    walk: Vec<u32>,
}

impl IntervalTree {
    /// An empty tree.
    pub fn new() -> Self {
        IntervalTree {
            nodes: Vec::new(),
            free: Vec::new(),
            root: NIL,
            len: 0,
            seq: 0,
            walk: Vec::new(),
        }
    }

    /// Number of stored (coalesced) intervals.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no intervals are stored.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Remove all intervals, retaining allocated capacity for reuse.
    pub fn clear(&mut self) {
        self.nodes.clear();
        self.free.clear();
        self.walk.clear();
        self.root = NIL;
        self.len = 0;
        self.seq = 0;
    }

    /// Insert `[lo, hi]` (inclusive, `lo <= hi`), merging with any stored
    /// interval it overlaps or abuts. Amortized O(log n): every interval
    /// absorbed here was inserted exactly once before.
    pub fn insert(&mut self, lo: u64, hi: u64) {
        debug_assert!(lo <= hi, "inverted interval [{lo}, {hi}]");
        let (mut lo, mut hi) = (lo, hi);
        let (mut left, mut right) = self.split(self.root, lo);
        // At most one interval entirely left of `lo` can touch us: the
        // rightmost, since stored intervals are disjoint and sorted.
        while let Some(p) = self.max_node(left) {
            let n = &self.nodes[p as usize];
            if n.hi.saturating_add(1) < lo {
                break;
            }
            lo = lo.min(n.lo);
            hi = hi.max(n.hi);
            left = self.pop(left, p);
        }
        // A wide insert can swallow many intervals at or after `lo`.
        while let Some(p) = self.min_node(right) {
            let n = &self.nodes[p as usize];
            if n.lo > hi.saturating_add(1) {
                break;
            }
            hi = hi.max(n.hi);
            right = self.pop(right, p);
        }
        let node = self.alloc(lo, hi);
        let merged = self.merge(left, node);
        self.root = self.merge(merged, right);
        self.len += 1;
    }

    /// True when some stored interval contains `d` (stabbing query).
    pub fn covers(&self, d: u64) -> bool {
        let mut t = self.root;
        while t != NIL {
            let n = &self.nodes[t as usize];
            if n.max_hi < d {
                return false;
            }
            if d < n.lo {
                t = n.left;
            } else if d <= n.hi {
                return true;
            } else {
                // Disjoint intervals: everything in the left subtree ends
                // before `n.lo <= d`, so only the right can cover.
                t = n.right;
            }
        }
        false
    }

    /// Append the intervals to `out` in sorted order and clear the tree.
    /// Reuses an internal stack: no allocation beyond `out`'s growth.
    pub fn drain_into(&mut self, out: &mut Vec<(u64, u64)>) {
        out.reserve(self.len);
        self.walk.clear();
        let mut t = self.root;
        loop {
            while t != NIL {
                self.walk.push(t);
                t = self.nodes[t as usize].left;
            }
            let Some(p) = self.walk.pop() else { break };
            let n = &self.nodes[p as usize];
            out.push((n.lo, n.hi));
            t = n.right;
        }
        self.clear();
    }

    fn alloc(&mut self, lo: u64, hi: u64) -> u32 {
        self.seq += 1;
        let node = Node {
            lo,
            hi,
            max_hi: hi,
            prio: splitmix64(self.seq),
            left: NIL,
            right: NIL,
        };
        match self.free.pop() {
            Some(i) => {
                self.nodes[i as usize] = node;
                i
            }
            None => {
                self.nodes.push(node);
                (self.nodes.len() - 1) as u32
            }
        }
    }

    /// Recompute `max_hi` from children (call after children change).
    fn pull(&mut self, t: u32) {
        let (l, r, hi) = {
            let n = &self.nodes[t as usize];
            (n.left, n.right, n.hi)
        };
        let mut m = hi;
        if l != NIL {
            m = m.max(self.nodes[l as usize].max_hi);
        }
        if r != NIL {
            m = m.max(self.nodes[r as usize].max_hi);
        }
        self.nodes[t as usize].max_hi = m;
    }

    /// Split by `lo` key: intervals with `lo < key` left, rest right.
    fn split(&mut self, t: u32, key: u64) -> (u32, u32) {
        if t == NIL {
            return (NIL, NIL);
        }
        if self.nodes[t as usize].lo < key {
            let (a, b) = self.split(self.nodes[t as usize].right, key);
            self.nodes[t as usize].right = a;
            self.pull(t);
            (t, b)
        } else {
            let (a, b) = self.split(self.nodes[t as usize].left, key);
            self.nodes[t as usize].left = b;
            self.pull(t);
            (a, t)
        }
    }

    /// Merge two trees where every key in `a` precedes every key in `b`.
    fn merge(&mut self, a: u32, b: u32) -> u32 {
        if a == NIL {
            return b;
        }
        if b == NIL {
            return a;
        }
        if self.nodes[a as usize].prio >= self.nodes[b as usize].prio {
            let m = self.merge(self.nodes[a as usize].right, b);
            self.nodes[a as usize].right = m;
            self.pull(a);
            a
        } else {
            let m = self.merge(a, self.nodes[b as usize].left);
            self.nodes[b as usize].left = m;
            self.pull(b);
            b
        }
    }

    /// Index of the minimum-`lo` node of subtree `t`, if any.
    fn min_node(&self, t: u32) -> Option<u32> {
        if t == NIL {
            return None;
        }
        let mut t = t;
        while self.nodes[t as usize].left != NIL {
            t = self.nodes[t as usize].left;
        }
        Some(t)
    }

    /// Index of the maximum-`lo` node of subtree `t`, if any.
    fn max_node(&self, t: u32) -> Option<u32> {
        if t == NIL {
            return None;
        }
        let mut t = t;
        while self.nodes[t as usize].right != NIL {
            t = self.nodes[t as usize].right;
        }
        Some(t)
    }

    /// Detach node `p` (a minimum or maximum of subtree `t`) and return
    /// the new subtree root. `p`'s slot goes on the free list.
    fn pop(&mut self, t: u32, p: u32) -> u32 {
        let new_root = self.remove_rec(t, p);
        self.free.push(p);
        self.len -= 1;
        new_root
    }

    fn remove_rec(&mut self, t: u32, p: u32) -> u32 {
        debug_assert_ne!(t, NIL, "node to remove not found");
        if t == p {
            // Min/max nodes have at most one child.
            let n = &self.nodes[t as usize];
            return if n.left != NIL { n.left } else { n.right };
        }
        let target_lo = self.nodes[p as usize].lo;
        if target_lo < self.nodes[t as usize].lo {
            let sub = self.remove_rec(self.nodes[t as usize].left, p);
            self.nodes[t as usize].left = sub;
        } else {
            let sub = self.remove_rec(self.nodes[t as usize].right, p);
            self.nodes[t as usize].right = sub;
        }
        self.pull(t);
        t
    }
}

/// SplitMix64: deterministic, well-mixed treap priorities.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn drain(t: &mut IntervalTree) -> Vec<(u64, u64)> {
        let mut out = Vec::new();
        t.drain_into(&mut out);
        out
    }

    #[test]
    fn inserts_merge_overlaps_and_adjacency() {
        let mut t = IntervalTree::new();
        t.insert(10, 20);
        t.insert(30, 40);
        assert_eq!(t.len(), 2);
        t.insert(21, 29); // bridges both neighbours
        assert_eq!(t.len(), 1);
        assert_eq!(drain(&mut t), vec![(10, 40)]);
    }

    #[test]
    fn wide_insert_swallows_many() {
        let mut t = IntervalTree::new();
        for i in 0..50u64 {
            t.insert(i * 10, i * 10 + 2);
        }
        assert_eq!(t.len(), 50);
        t.insert(0, 1_000);
        assert_eq!(t.len(), 1);
        assert_eq!(drain(&mut t), vec![(0, 1_000)]);
    }

    #[test]
    fn covers_stabbing() {
        let mut t = IntervalTree::new();
        t.insert(5, 9);
        t.insert(100, 200);
        assert!(t.covers(5) && t.covers(9) && t.covers(150));
        assert!(!t.covers(4) && !t.covers(10) && !t.covers(201));
    }

    #[test]
    fn clear_retains_capacity() {
        let mut t = IntervalTree::new();
        for i in 0..100u64 {
            t.insert(i * 3, i * 3 + 1);
        }
        let cap = t.nodes.capacity();
        t.clear();
        assert!(t.is_empty());
        assert_eq!(t.nodes.capacity(), cap);
        t.insert(1, 2);
        assert_eq!(drain(&mut t), vec![(1, 2)]);
    }

    /// Reference implementation: sort + merge.
    fn naive(mut v: Vec<(u64, u64)>) -> Vec<(u64, u64)> {
        v.sort_unstable();
        let mut out: Vec<(u64, u64)> = Vec::new();
        for (lo, hi) in v {
            match out.last_mut() {
                Some((_, ph)) if lo <= ph.saturating_add(1) => *ph = (*ph).max(hi),
                _ => out.push((lo, hi)),
            }
        }
        out
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(256))]

        #[test]
        fn prop_matches_sort_merge(iv in prop::collection::vec((0u64..500, 0u64..16), 0..60)) {
            let intervals: Vec<(u64, u64)> = iv.into_iter().map(|(lo, w)| (lo, lo + w)).collect();
            let mut t = IntervalTree::new();
            for &(lo, hi) in &intervals {
                t.insert(lo, hi);
            }
            let got = drain(&mut t);
            prop_assert_eq!(got, naive(intervals));
        }

        #[test]
        fn prop_covers_agrees_with_contents(iv in prop::collection::vec((0u64..300, 0u64..8), 0..40), probe in 0u64..320) {
            let mut t = IntervalTree::new();
            for (lo, w) in &iv {
                t.insert(*lo, lo + w);
            }
            let truth = iv.iter().any(|(lo, w)| (*lo..=lo + w).contains(&probe));
            prop_assert_eq!(t.covers(probe), truth);
        }
    }
}
