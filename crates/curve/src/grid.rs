//! A space-filling curve laid over a lon/lat extent.

use crate::curve::{Curve, CurveFamily};
use crate::hilbert;
use crate::ranges::{decompose_blocks, RangeBudget};
use crate::zorder;
use sts_geo::{GeoPoint, GeoRect, WORLD};

/// Shared constructor validation for uniform-grid curves.
pub(crate) fn validate_grid(extent: &GeoRect, order: u32) {
    assert!(extent.is_valid(), "invalid grid extent {extent:?}");
    assert!(
        extent.lon_span() > 0.0 && extent.lat_span() > 0.0,
        "degenerate grid extent {extent:?}"
    );
    assert!(
        (1..=hilbert::MAX_ORDER).contains(&order),
        "unsupported curve order {order}"
    );
}

/// Cell containing `p` on a uniform `2^order` grid over `extent`
/// (out-of-extent points clamp to the border cells).
pub(crate) fn cell_of_uniform(extent: &GeoRect, order: u32, p: GeoPoint) -> (u64, u64) {
    let n = 1u64 << order;
    let fx = (p.lon - extent.min_lon) / extent.lon_span();
    let fy = (p.lat - extent.min_lat) / extent.lat_span();
    let clamp = |f: f64| -> u64 {
        let v = (f * n as f64).floor();
        if v < 0.0 {
            0
        } else if v >= n as f64 {
            n - 1
        } else {
            v as u64
        }
    };
    (clamp(fx), clamp(fy))
}

/// Geographic bounding box of cell `(x, y)` on a uniform grid.
pub(crate) fn cell_rect_uniform(extent: &GeoRect, order: u32, x: u64, y: u64) -> GeoRect {
    let n = (1u64 << order) as f64;
    let w = extent.lon_span() / n;
    let h = extent.lat_span() / n;
    GeoRect::new(
        extent.min_lon + x as f64 * w,
        extent.min_lat + y as f64 * h,
        extent.min_lon + (x as f64 + 1.0) * w,
        extent.min_lat + (y as f64 + 1.0) * h,
    )
}

/// The grid-cell span overlapping `rect` on a uniform grid, or `None`
/// when the rectangle misses the extent entirely.
pub(crate) fn cell_span_uniform(
    extent: &GeoRect,
    order: u32,
    rect: &GeoRect,
) -> Option<(u64, u64, u64, u64)> {
    if !rect.intersects(extent) {
        return None;
    }
    let lo = cell_of_uniform(extent, order, GeoPoint::new(rect.min_lon, rect.min_lat));
    // The closed upper boundary belongs to the previous cell when it
    // falls exactly on a grid line and the rect is non-degenerate;
    // clamping inside `cell_of_uniform` already handles the extent
    // border.
    let hi = cell_of_uniform(extent, order, GeoPoint::new(rect.max_lon, rect.max_lat));
    Some((lo.0, hi.0, lo.1, hi.1))
}

/// Which curve orders the grid cells.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum CurveKind {
    /// Hilbert curve — the paper's choice (§4.2).
    Hilbert,
    /// Z-order (Morton) — ablation baseline.
    ZOrder,
}

/// A `2^order × 2^order` grid over `extent`, each cell addressed by its
/// 1D curve index.
///
/// * `CurveGrid::world(order)` reproduces the paper's `hil` method (the
///   curve covers the whole globe);
/// * `CurveGrid::fitted(data_mbr, order)` reproduces `hil*` (same bit
///   budget spent on the data's bounding box only, i.e. higher effective
///   precision).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CurveGrid {
    extent: GeoRect,
    order: u32,
    kind: CurveKind,
}

impl CurveGrid {
    /// A Hilbert grid over the whole world (the `hil` configuration).
    pub fn world(order: u32) -> Self {
        Self::new(WORLD, order, CurveKind::Hilbert)
    }

    /// A Hilbert grid fitted to a data MBR (the `hil*` configuration).
    pub fn fitted(extent: GeoRect, order: u32) -> Self {
        Self::new(extent, order, CurveKind::Hilbert)
    }

    /// Fully custom grid.
    pub fn new(extent: GeoRect, order: u32, kind: CurveKind) -> Self {
        validate_grid(&extent, order);
        CurveGrid {
            extent,
            order,
            kind,
        }
    }

    /// Bits per axis.
    pub fn order(&self) -> u32 {
        self.order
    }

    /// The covered extent.
    pub fn extent(&self) -> &GeoRect {
        &self.extent
    }

    /// The curve in use.
    pub fn kind(&self) -> CurveKind {
        self.kind
    }

    /// Cells per axis.
    pub fn cells_per_axis(&self) -> u64 {
        1 << self.order
    }

    /// Total number of distinct 1D values.
    pub fn total_cells(&self) -> u64 {
        1 << (2 * self.order)
    }

    /// Grid coordinates of the cell containing `p` (points outside the
    /// extent clamp to the border cells, like MongoDB clamps GeoHash
    /// inputs at the domain edge).
    pub fn cell_of(&self, p: GeoPoint) -> (u64, u64) {
        cell_of_uniform(&self.extent, self.order, p)
    }

    /// The 1D curve index of the cell containing `p` — the value stored
    /// in the `hilbertIndex` document field.
    pub fn index_of(&self, p: GeoPoint) -> u64 {
        let (x, y) = self.cell_of(p);
        self.index_of_cell(x, y)
    }

    /// The 1D curve index of a grid cell.
    pub fn index_of_cell(&self, x: u64, y: u64) -> u64 {
        match self.kind {
            CurveKind::Hilbert => hilbert::xy2d(self.order, x, y),
            CurveKind::ZOrder => zorder::xy2z(self.order, x, y),
        }
    }

    /// Grid cell of a 1D curve index.
    pub fn cell_of_index(&self, d: u64) -> (u64, u64) {
        match self.kind {
            CurveKind::Hilbert => hilbert::d2xy(self.order, d),
            CurveKind::ZOrder => zorder::z2xy(self.order, d),
        }
    }

    /// Geographic bounding box of a grid cell.
    pub fn cell_rect(&self, x: u64, y: u64) -> GeoRect {
        cell_rect_uniform(&self.extent, self.order, x, y)
    }

    /// The grid-cell span `[x0..=x1] × [y0..=y1]` overlapping `rect`,
    /// or `None` when the rectangle misses the extent entirely.
    pub fn cell_span(&self, rect: &GeoRect) -> Option<(u64, u64, u64, u64)> {
        cell_span_uniform(&self.extent, self.order, rect)
    }

    /// Decompose a query rectangle into sorted, merged, inclusive 1D
    /// index ranges (§4.2.1: "consecutive values of cells are expressed
    /// as ranges, whereas non-consecutive cell values are included as
    /// individual values").
    ///
    /// `budget` bounds the number of ranges; excess ranges are coalesced
    /// with their nearest neighbours (introducing false-positive cells
    /// that document-level refinement later discards).
    pub fn decompose_rect(&self, rect: &GeoRect, budget: RangeBudget) -> Vec<(u64, u64)> {
        let Some((x0, x1, y0, y1)) = self.cell_span(rect) else {
            return Vec::new();
        };
        decompose_blocks(self, x0, x1, y0, y1, budget)
    }

    /// Like [`decompose_rect`](Self::decompose_rect), but appends the
    /// ranges to `out` and reuses `scratch` — the allocation-free form
    /// the query hot path uses.
    pub fn decompose_rect_into(
        &self,
        rect: &GeoRect,
        budget: RangeBudget,
        scratch: &mut crate::CoveringScratch,
        out: &mut Vec<(u64, u64)>,
    ) {
        let Some((x0, x1, y0, y1)) = self.cell_span(rect) else {
            return;
        };
        crate::ranges::decompose_blocks_into(self, x0, x1, y0, y1, budget, scratch, out);
    }
}

/// [`CurveGrid`] is the trait's reference implementation; the inherent
/// methods above remain for callers holding a concrete grid.
impl Curve for CurveGrid {
    fn family(&self) -> CurveFamily {
        match self.kind {
            CurveKind::Hilbert => CurveFamily::Hilbert,
            CurveKind::ZOrder => CurveFamily::ZOrder,
        }
    }

    fn order(&self) -> u32 {
        self.order
    }

    fn extent(&self) -> &GeoRect {
        &self.extent
    }

    fn cell_of(&self, p: GeoPoint) -> (u64, u64) {
        CurveGrid::cell_of(self, p)
    }

    fn index_of_cell(&self, x: u64, y: u64) -> u64 {
        CurveGrid::index_of_cell(self, x, y)
    }

    fn cell_of_index(&self, d: u64) -> (u64, u64) {
        CurveGrid::cell_of_index(self, d)
    }

    fn cell_rect(&self, x: u64, y: u64) -> GeoRect {
        CurveGrid::cell_rect(self, x, y)
    }

    fn cell_span(&self, rect: &GeoRect) -> Option<(u64, u64, u64, u64)> {
        CurveGrid::cell_span(self, rect)
    }

    fn decompose_cells_into(
        &self,
        (x0, x1, y0, y1): (u64, u64, u64, u64),
        budget: RangeBudget,
        scratch: &mut crate::CoveringScratch,
        out: &mut Vec<(u64, u64)>,
    ) {
        crate::ranges::decompose_blocks_into(self, x0, x1, y0, y1, budget, scratch, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::PAPER_CURVE_ORDER;

    const ATHENS: GeoPoint = GeoPoint::new(23.727539, 37.983810);

    fn greece_mbr() -> GeoRect {
        GeoRect::new(19.632533, 34.929233, 28.245285, 41.757797)
    }

    #[test]
    fn world_grid_contains_athens() {
        let g = CurveGrid::world(PAPER_CURVE_ORDER);
        let (x, y) = g.cell_of(ATHENS);
        assert!(g.cell_rect(x, y).contains(ATHENS));
        let d = g.index_of(ATHENS);
        assert_eq!(g.cell_of_index(d), (x, y));
        assert!(d < g.total_cells());
    }

    #[test]
    fn fitted_grid_has_higher_precision() {
        let world = CurveGrid::world(PAPER_CURVE_ORDER);
        let fitted = CurveGrid::fitted(greece_mbr(), PAPER_CURVE_ORDER);
        let (wx, wy) = world.cell_of(ATHENS);
        let (fx, fy) = fitted.cell_of(ATHENS);
        let warea = world.cell_rect(wx, wy).area_km2();
        let farea = fitted.cell_rect(fx, fy).area_km2();
        // hil* spends the same bits on ~0.05% of the globe: much smaller cells.
        assert!(farea < warea / 100.0, "fitted {farea} vs world {warea}");
    }

    #[test]
    fn clamping_outside_extent() {
        let g = CurveGrid::fitted(greece_mbr(), 8);
        let (x, y) = g.cell_of(GeoPoint::new(-100.0, -80.0));
        assert_eq!((x, y), (0, 0));
        let (x, y) = g.cell_of(GeoPoint::new(100.0, 80.0));
        assert_eq!((x, y), (255, 255));
    }

    #[test]
    fn cell_span_of_disjoint_rect_is_none() {
        let g = CurveGrid::fitted(greece_mbr(), 8);
        let far = GeoRect::new(100.0, 10.0, 101.0, 11.0);
        assert!(g.cell_span(&far).is_none());
        assert!(g.decompose_rect(&far, RangeBudget::default()).is_empty());
    }

    #[test]
    fn zorder_grid_works_too() {
        let g = CurveGrid::new(greece_mbr(), 10, CurveKind::ZOrder);
        let d = g.index_of(ATHENS);
        let (x, y) = g.cell_of_index(d);
        assert!(g.cell_rect(x, y).contains(ATHENS));
    }

    #[test]
    #[should_panic(expected = "unsupported curve order")]
    fn rejects_order_zero() {
        CurveGrid::world(0);
    }
}
