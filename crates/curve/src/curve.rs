//! The [`Curve`] trait: a pluggable cell↔index mapping over a lon/lat
//! extent, plus the [`CurveFamily`] registry the store config and the
//! bench matrix select from.
//!
//! The paper evaluates exactly one curve (Hilbert, world vs data-MBR
//! extent), but its locality claims are curve-generic: any bijection
//! between grid cells and 1D indices that (a) keeps nearby cells in few
//! index runs and (b) decomposes a query rectangle into sorted 1D
//! ranges can drive the same `hilbertIndex` key layout, B-tree and
//! shard-key machinery. This module abstracts that contract so the
//! store can swap curves without touching the query path.

use std::fmt;
use std::sync::Arc;

use crate::onion::OnionCurve;
use crate::ranges::RangeBudget;
use crate::skewgh::SkewGeoHash;
use crate::{CoveringScratch, CurveGrid, CurveKind};
use sts_geo::{GeoPoint, GeoRect};

/// A space-filling curve over a `2^order × 2^order` grid on a lon/lat
/// extent.
///
/// Implementations must be bijections between grid cells and the index
/// set `0..total_cells()`, and `decompose_rect_into` must emit sorted,
/// disjoint, inclusive index ranges that cover *exactly* the cells
/// overlapping the query rectangle (superset only under a binding
/// [`RangeBudget`]). The differential oracles assume nothing else.
pub trait Curve: Send + Sync + fmt::Debug {
    /// Which family this curve belongs to (used for config round-trips,
    /// bench labels and plan-cache keys).
    fn family(&self) -> CurveFamily;

    /// Bits per axis.
    fn order(&self) -> u32;

    /// The covered lon/lat extent.
    fn extent(&self) -> &GeoRect;

    /// Grid coordinates of the cell containing `p`; points outside the
    /// extent clamp to the border cells.
    fn cell_of(&self, p: GeoPoint) -> (u64, u64);

    /// The 1D index of a grid cell.
    fn index_of_cell(&self, x: u64, y: u64) -> u64;

    /// Grid cell of a 1D index (inverse of [`index_of_cell`](Self::index_of_cell)).
    fn cell_of_index(&self, d: u64) -> (u64, u64);

    /// Geographic bounding box of a grid cell.
    fn cell_rect(&self, x: u64, y: u64) -> GeoRect;

    /// The grid-cell span `[x0..=x1] × [y0..=y1]` overlapping `rect`,
    /// or `None` when the rectangle misses the extent entirely.
    fn cell_span(&self, rect: &GeoRect) -> Option<(u64, u64, u64, u64)>;

    /// Decompose the cell span `[x0..=x1] × [y0..=y1]` into sorted,
    /// merged, inclusive 1D index ranges appended to `out`, reusing
    /// `scratch` (the allocation-free form the query hot path uses).
    fn decompose_cells_into(
        &self,
        span: (u64, u64, u64, u64),
        budget: RangeBudget,
        scratch: &mut CoveringScratch,
        out: &mut Vec<(u64, u64)>,
    );

    // ---------------------------------------------- provided methods

    /// Cells per axis (`2^order`).
    fn cells_per_axis(&self) -> u64 {
        1 << self.order()
    }

    /// Total number of distinct 1D values (`4^order`).
    fn total_cells(&self) -> u64 {
        1 << (2 * self.order())
    }

    /// The 1D curve index of the cell containing `p` — the value stored
    /// in the `hilbertIndex` document field (the field name is part of
    /// the on-disk schema and stays curve-agnostic).
    fn index_of(&self, p: GeoPoint) -> u64 {
        let (x, y) = self.cell_of(p);
        self.index_of_cell(x, y)
    }

    /// Decompose a query rectangle into 1D index ranges appended to
    /// `out`; no-op when the rectangle misses the extent.
    fn decompose_rect_into(
        &self,
        rect: &GeoRect,
        budget: RangeBudget,
        scratch: &mut CoveringScratch,
        out: &mut Vec<(u64, u64)>,
    ) {
        if let Some(span) = self.cell_span(rect) {
            self.decompose_cells_into(span, budget, scratch, out);
        }
    }

    /// Allocating convenience form of [`decompose_rect_into`](Self::decompose_rect_into).
    fn decompose_rect(&self, rect: &GeoRect, budget: RangeBudget) -> Vec<(u64, u64)> {
        let mut out = Vec::new();
        self.decompose_rect_into(rect, budget, &mut CoveringScratch::new(), &mut out);
        out
    }

    /// A stable fingerprint of the full cell geometry + topology,
    /// suitable as a plan-cache key component: two curves with equal
    /// fingerprints produce identical coverings for every rectangle.
    /// Data-fitted curves (skew GeoHash) fold their bucket boundaries
    /// in, so refitting on a new sample invalidates cached plans.
    fn fingerprint(&self) -> u64 {
        let e = self.extent();
        let mut h = fnv1a(0xcbf2_9ce4_8422_2325, self.family() as u64);
        h = fnv1a(h, u64::from(self.order()));
        for v in [e.min_lon, e.min_lat, e.max_lon, e.max_lat] {
            h = fnv1a(h, v.to_bits());
        }
        h
    }
}

/// One FNV-1a style mixing step over a `u64` word.
pub(crate) fn fnv1a(state: u64, word: u64) -> u64 {
    let mut h = state;
    for b in word.to_le_bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// The selectable curve families.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub enum CurveFamily {
    /// Hilbert curve — the paper's choice (§4.2).
    Hilbert,
    /// Z-order (Morton) bit interleaving.
    ZOrder,
    /// Onion curve (Xu et al., arXiv:1801.07399): concentric square
    /// rings from the grid boundary inward — near-optimal clustering
    /// for range queries touching the domain edge.
    Onion,
    /// Entropy-maximizing skew-adaptive GeoHash (after Arnold 2015):
    /// Z-order topology over per-axis bucket boundaries fit from a
    /// data sample, so each cell holds a near-equal share of the data.
    SkewGeoHash,
}

impl CurveFamily {
    /// Every selectable family, in bench-matrix order.
    pub const ALL: [CurveFamily; 4] = [
        CurveFamily::Hilbert,
        CurveFamily::ZOrder,
        CurveFamily::Onion,
        CurveFamily::SkewGeoHash,
    ];

    /// Canonical lower-case name (CLI flags, JSON rows, baseline keys).
    pub fn name(self) -> &'static str {
        match self {
            CurveFamily::Hilbert => "hilbert",
            CurveFamily::ZOrder => "zorder",
            CurveFamily::Onion => "onion",
            CurveFamily::SkewGeoHash => "skewgh",
        }
    }

    /// Parse a canonical name (plus a few obvious aliases).
    pub fn parse(s: &str) -> Option<CurveFamily> {
        match s.to_ascii_lowercase().as_str() {
            "hilbert" | "hil" => Some(CurveFamily::Hilbert),
            "zorder" | "z-order" | "morton" => Some(CurveFamily::ZOrder),
            "onion" => Some(CurveFamily::Onion),
            "skewgh" | "skew-geohash" | "geohash" => Some(CurveFamily::SkewGeoHash),
            _ => None,
        }
    }

    /// Build a curve of this family over `extent` at `order`.
    ///
    /// `sample` is only consulted by data-fitted families (skew
    /// GeoHash); an empty sample degrades those to uniform buckets, so
    /// every family is safe to build without data.
    pub fn build(
        self,
        extent: &GeoRect,
        order: u32,
        sample: &[GeoPoint],
    ) -> Arc<dyn Curve + 'static> {
        match self {
            CurveFamily::Hilbert => Arc::new(CurveGrid::new(*extent, order, CurveKind::Hilbert)),
            CurveFamily::ZOrder => Arc::new(CurveGrid::new(*extent, order, CurveKind::ZOrder)),
            CurveFamily::Onion => Arc::new(OnionCurve::new(*extent, order)),
            CurveFamily::SkewGeoHash => Arc::new(SkewGeoHash::fit(*extent, order, sample)),
        }
    }
}

impl Default for CurveFamily {
    /// Hilbert — the paper's configuration.
    fn default() -> Self {
        CurveFamily::Hilbert
    }
}

impl fmt::Display for CurveFamily {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl std::str::FromStr for CurveFamily {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        CurveFamily::parse(s).ok_or_else(|| {
            let names: Vec<_> = CurveFamily::ALL.iter().map(|f| f.name()).collect();
            format!(
                "unknown curve family {s:?} (expected one of {})",
                names.join("/")
            )
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sts_geo::WORLD;

    #[test]
    fn family_names_round_trip() {
        for f in CurveFamily::ALL {
            assert_eq!(CurveFamily::parse(f.name()), Some(f));
            assert_eq!(f.name().parse::<CurveFamily>().unwrap(), f);
        }
        assert!("voronoi".parse::<CurveFamily>().is_err());
    }

    #[test]
    fn factory_builds_every_family() {
        for f in CurveFamily::ALL {
            let c = f.build(&WORLD, 6, &[]);
            assert_eq!(c.family(), f);
            assert_eq!(c.order(), 6);
            let p = GeoPoint::new(23.7, 37.9);
            let d = c.index_of(p);
            assert!(d < c.total_cells());
            let (x, y) = c.cell_of_index(d);
            assert_eq!(c.index_of_cell(x, y), d);
        }
    }

    #[test]
    fn fingerprints_distinguish_families_and_extents() {
        let greece = GeoRect::new(19.6, 34.9, 28.2, 41.8);
        let mut seen = Vec::new();
        for f in CurveFamily::ALL {
            for extent in [&WORLD, &greece] {
                let fp = f.build(extent, 8, &[]).fingerprint();
                assert!(!seen.contains(&fp), "fingerprint collision for {f}");
                seen.push(fp);
            }
        }
        // Deterministic: same construction, same fingerprint.
        let a = CurveFamily::Hilbert.build(&greece, 8, &[]).fingerprint();
        let b = CurveFamily::Hilbert.build(&greece, 8, &[]).fingerprint();
        assert_eq!(a, b);
    }
}
