//! The Z-order (Morton) curve, for ablation against Hilbert.
//!
//! Z-order is what GeoHash effectively computes (§2.1); the paper chooses
//! Hilbert for its better clustering (ref. \[14\]). Implementing both lets the
//! ablation benches quantify that choice.

/// Interleave the low `order` bits of `x` (even positions) and `y` (odd
/// positions) into a Morton code.
pub fn xy2z(order: u32, x: u64, y: u64) -> u64 {
    debug_assert!(order <= 31);
    debug_assert!(x < (1 << order) && y < (1 << order));
    spread_bits(x) | (spread_bits(y) << 1)
}

/// Inverse of [`xy2z`].
pub fn z2xy(_order: u32, z: u64) -> (u64, u64) {
    (compact_bits(z), compact_bits(z >> 1))
}

/// Spread the low 32 bits of `v` into even bit positions.
fn spread_bits(v: u64) -> u64 {
    let mut v = v & 0xFFFF_FFFF;
    v = (v | (v << 16)) & 0x0000_FFFF_0000_FFFF;
    v = (v | (v << 8)) & 0x00FF_00FF_00FF_00FF;
    v = (v | (v << 4)) & 0x0F0F_0F0F_0F0F_0F0F;
    v = (v | (v << 2)) & 0x3333_3333_3333_3333;
    v = (v | (v << 1)) & 0x5555_5555_5555_5555;
    v
}

/// Gather even bit positions back into the low 32 bits.
fn compact_bits(v: u64) -> u64 {
    let mut v = v & 0x5555_5555_5555_5555;
    v = (v | (v >> 1)) & 0x3333_3333_3333_3333;
    v = (v | (v >> 2)) & 0x0F0F_0F0F_0F0F_0F0F;
    v = (v | (v >> 4)) & 0x00FF_00FF_00FF_00FF;
    v = (v | (v >> 8)) & 0x0000_FFFF_0000_FFFF;
    v = (v | (v >> 16)) & 0x0000_0000_FFFF_FFFF;
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn known_values() {
        assert_eq!(xy2z(2, 0, 0), 0);
        assert_eq!(xy2z(2, 1, 0), 1);
        assert_eq!(xy2z(2, 0, 1), 2);
        assert_eq!(xy2z(2, 1, 1), 3);
        assert_eq!(xy2z(2, 2, 0), 4);
    }

    #[test]
    fn exhaustive_bijection_order4() {
        let mut seen = vec![false; 256];
        for x in 0..16u64 {
            for y in 0..16u64 {
                let z = xy2z(4, x, y) as usize;
                assert!(!seen[z]);
                seen[z] = true;
                assert_eq!(z2xy(4, z as u64), (x, y));
            }
        }
        assert!(seen.iter().all(|&b| b));
    }

    #[test]
    fn aligned_blocks_contiguous() {
        // Like Hilbert, Z-order keeps aligned quadtree blocks contiguous.
        let order = 5u32;
        for k in 1..=3u32 {
            let size = 1u64 << k;
            for bx in (0..(1u64 << order)).step_by(size as usize) {
                for by in (0..(1u64 << order)).step_by(size as usize) {
                    let base = xy2z(order, bx, by) & !(size * size - 1);
                    for dx in 0..size {
                        for dy in 0..size {
                            let z = xy2z(order, bx + dx, by + dy);
                            assert!((base..base + size * size).contains(&z));
                        }
                    }
                }
            }
        }
    }

    proptest! {
        #[test]
        fn prop_roundtrip(x in 0u64..(1 << 31), y in 0u64..(1 << 31)) {
            prop_assert_eq!(z2xy(31, xy2z(31, x, y)), (x, y));
        }
    }
}
