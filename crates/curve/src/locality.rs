//! Clustering/locality metrics for space-filling curves.
//!
//! Moon, Jagadish, Faloutsos & Saltz (ref. \[14\] of the paper) analyse the Hilbert curve's
//! clustering: the expected number of contiguous curve segments
//! ("clusters") needed to cover a query region. These metrics let the
//! ablation benches quantify the paper's curve choice empirically.

use crate::grid::CurveGrid;
use crate::ranges::RangeBudget;
use sts_geo::GeoRect;

/// Number of contiguous 1D segments ("clusters", Moon et al.'s metric)
/// the curve needs to cover `rect` exactly.
pub fn clusters_for_rect(grid: &CurveGrid, rect: &GeoRect) -> usize {
    grid.decompose_rect(rect, RangeBudget::UNLIMITED).len()
}

/// Average absolute 1D index difference between horizontally and
/// vertically adjacent cells, sampled pseudo-randomly (deterministic in
/// `seed`). Lower means better locality preservation.
pub fn mean_neighbour_gap(grid: &CurveGrid, samples: usize, seed: u64) -> f64 {
    let n = grid.cells_per_axis();
    if n < 2 || samples == 0 {
        return 0.0;
    }
    let mut state = seed | 1;
    let mut next = move || {
        // splitmix64
        state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    };
    let mut total = 0f64;
    let mut count = 0usize;
    for _ in 0..samples {
        let x = next() % (n - 1);
        let y = next() % (n - 1);
        let d = grid.index_of_cell(x, y);
        let right = grid.index_of_cell(x + 1, y);
        let up = grid.index_of_cell(x, y + 1);
        total += d.abs_diff(right) as f64 + d.abs_diff(up) as f64;
        count += 2;
    }
    total / count as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CurveGrid, CurveKind};

    fn unit(kind: CurveKind) -> CurveGrid {
        CurveGrid::new(GeoRect::new(0.0, 0.0, 1.0, 1.0), 9, kind)
    }

    #[test]
    fn hilbert_clusters_less_than_zorder_on_average() {
        // Moon et al.'s result holds on random rectangles *on average*
        // (individual shapes — e.g. thin horizontal strips — can favour
        // Z-order's x-major layout).
        let h = unit(CurveKind::Hilbert);
        let z = unit(CurveKind::ZOrder);
        let mut state = 99u64;
        let mut next = move || {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut v = state;
            v = (v ^ (v >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            v ^ (v >> 31)
        };
        let (mut hc, mut zc) = (0usize, 0usize);
        for _ in 0..40 {
            let w = 0.02 + (next() % 100) as f64 / 1_000.0;
            let hgt = 0.02 + (next() % 100) as f64 / 1_000.0;
            let x = (next() % 800) as f64 / 1_000.0;
            let y = (next() % 800) as f64 / 1_000.0;
            let rect = GeoRect::new(x, y, x + w, y + hgt);
            hc += clusters_for_rect(&h, &rect);
            zc += clusters_for_rect(&z, &rect);
        }
        assert!(hc < zc, "hilbert {hc} vs zorder {zc}");
    }

    #[test]
    fn neighbour_gap_is_positive_and_finite() {
        let g = unit(CurveKind::Hilbert);
        let gap = mean_neighbour_gap(&g, 1_000, 3);
        assert!(gap > 0.0 && gap.is_finite());
    }

    #[test]
    fn clusters_count_square_query() {
        let g = unit(CurveKind::Hilbert);
        let quarter = GeoRect::new(0.0, 0.0, 0.4999, 0.4999);
        // An aligned quadrant is exactly one cluster.
        assert_eq!(clusters_for_rect(&g, &quarter), 1);
        let sliver = GeoRect::new(0.0, 0.5, 1.0, 0.505);
        assert!(clusters_for_rect(&g, &sliver) > 10);
    }

    #[test]
    fn deterministic_in_seed() {
        let g = unit(CurveKind::Hilbert);
        assert_eq!(
            mean_neighbour_gap(&g, 500, 42).to_bits(),
            mean_neighbour_gap(&g, 500, 42).to_bits()
        );
    }
}
