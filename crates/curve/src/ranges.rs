//! Query-rectangle → 1D range decomposition.
//!
//! Both supported curves keep every *aligned* `2^k × 2^k` quadtree block
//! contiguous in index space. Decomposition therefore recurses over
//! aligned blocks: blocks fully inside the query emit their whole index
//! range at once, partial blocks split into four children, and single
//! cells bottom out. The result is the exact set of index intervals the
//! query touches — what §4.2.1 encodes into `$or`/`$in` constraints and
//! what Table 8 times.

use crate::grid::CurveGrid;
use crate::interval::IntervalTree;

/// Bounds the number of ranges a decomposition may return.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RangeBudget {
    /// Maximum number of disjoint ranges (minimum 1). Excess ranges are
    /// coalesced across the smallest gaps, trading false-positive index
    /// keys for fewer B-tree seeks.
    pub max_ranges: usize,
}

impl RangeBudget {
    /// No practical limit: the exact decomposition.
    pub const UNLIMITED: RangeBudget = RangeBudget {
        max_ranges: usize::MAX,
    };

    /// Budget of `n` ranges.
    pub fn new(n: usize) -> Self {
        RangeBudget {
            max_ranges: n.max(1),
        }
    }
}

impl Default for RangeBudget {
    /// 64 ranges. Measured on the perfsmoke workload (scale 0.002, 120
    /// queries, seed `0x51372021`; `perfsmoke --ablation-json`):
    ///
    /// * **hil** (order-13 curve): coverings are naturally small (~2.4
    ///   ranges/query, 287 total) — budgets 16/32/64/128 produce the
    ///   identical covering, so the budget never binds.
    /// * **hil\*** (finer curve): the budget binds hard. Total covering
    ///   ranges grow 1 898 → 3 566 → 5 365 → 5 895 across budgets
    ///   16/32/64/128, while `total_keys_examined` grows 55 251 →
    ///   57 504 → 61 750 → 63 595: each extra range costs a descent
    ///   plus a terminator probe, and the skip-scan's time-dimension
    ///   jumps already skip most of the false positives a bridged gap
    ///   admits. Result counts are identical at every budget.
    ///
    /// 64 keeps coverings tight enough for `$or`-clause routing (§4.2.2
    /// builds one filter clause per range) while staying within a few
    /// percent of the best-measured latency; lowering it is a
    /// reasonable tuning knob for very fine curves.
    fn default() -> Self {
        RangeBudget { max_ranges: 64 }
    }
}

/// Reusable working state for range decomposition.
///
/// The covering pipeline needs an [`IntervalTree`] (merge-as-you-go
/// block collection) and a gap buffer (budget coalescing). Both retain
/// their capacity across queries, so a store that threads one scratch
/// through its queries builds coverings without steady-state heap
/// allocation.
#[derive(Default)]
pub struct CoveringScratch {
    pub(crate) tree: IntervalTree,
    pub(crate) gaps: Vec<(u64, u32)>,
}

impl CoveringScratch {
    /// Empty scratch.
    pub fn new() -> Self {
        Self::default()
    }
}

/// Decompose the aligned-block cover of `[x0..=x1] × [y0..=y1]`.
pub(crate) fn decompose_blocks(
    grid: &CurveGrid,
    x0: u64,
    x1: u64,
    y0: u64,
    y1: u64,
    budget: RangeBudget,
) -> Vec<(u64, u64)> {
    let mut out = Vec::new();
    decompose_blocks_into(
        grid,
        x0,
        x1,
        y0,
        y1,
        budget,
        &mut CoveringScratch::new(),
        &mut out,
    );
    out
}

/// Like [`decompose_blocks`], but appends to `out` and reuses `scratch`.
#[allow(clippy::too_many_arguments)]
pub(crate) fn decompose_blocks_into(
    grid: &CurveGrid,
    x0: u64,
    x1: u64,
    y0: u64,
    y1: u64,
    budget: RangeBudget,
    scratch: &mut CoveringScratch,
    out: &mut Vec<(u64, u64)>,
) {
    decompose_blocks_generic_into(
        grid.order(),
        &|x, y| grid.index_of_cell(x, y),
        x0,
        x1,
        y0,
        y1,
        budget,
        scratch,
        out,
    );
}

/// Aligned-block decomposition for any curve whose aligned `2^k × 2^k`
/// quadtree blocks are contiguous in index space (Hilbert, Z-order and
/// every Z-order-topology variant regardless of cell geometry).
/// `index_of_cell` is the curve's cell → index map.
#[allow(clippy::too_many_arguments)]
pub(crate) fn decompose_blocks_generic_into<F: Fn(u64, u64) -> u64>(
    order: u32,
    index_of_cell: &F,
    x0: u64,
    x1: u64,
    y0: u64,
    y1: u64,
    budget: RangeBudget,
    scratch: &mut CoveringScratch,
    out: &mut Vec<(u64, u64)>,
) {
    let size = 1u64 << order;
    scratch.tree.clear();
    visit(index_of_cell, 0, 0, size, x0, x1, y0, y1, &mut scratch.tree);
    finish_covering(scratch, budget, out);
}

/// Drain the interval tree accumulated in `scratch` into `out` (sorted
/// and merged) and coalesce down to the range budget — the shared tail
/// of every curve's decomposition, block-recursive or ring-walking.
pub(crate) fn finish_covering(
    scratch: &mut CoveringScratch,
    budget: RangeBudget,
    out: &mut Vec<(u64, u64)>,
) {
    let start = out.len();
    scratch.tree.drain_into(out);
    if let Some(kept) = coalesce_to_budget(&mut out[start..], budget.max_ranges, &mut scratch.gaps)
    {
        out.truncate(start + kept);
    }
}

/// Recursive block visitor. Blocks land in the interval tree, which
/// merges overlapping/adjacent index ranges as they arrive — the
/// in-order drain is already the final covering.
#[allow(clippy::too_many_arguments)]
fn visit<F: Fn(u64, u64) -> u64>(
    index_of_cell: &F,
    bx: u64,
    by: u64,
    size: u64,
    x0: u64,
    x1: u64,
    y0: u64,
    y1: u64,
    out: &mut IntervalTree,
) {
    // Disjoint?
    if bx > x1 || by > y1 || bx + size - 1 < x0 || by + size - 1 < y0 {
        return;
    }
    // Fully contained?
    if bx >= x0 && bx + size - 1 <= x1 && by >= y0 && by + size - 1 <= y1 {
        let base = index_of_cell(bx, by) & !(size * size - 1);
        out.insert(base, base + size * size - 1);
        return;
    }
    if size == 1 {
        let d = index_of_cell(bx, by);
        out.insert(d, d);
        return;
    }
    let half = size / 2;
    visit(index_of_cell, bx, by, half, x0, x1, y0, y1, out);
    visit(index_of_cell, bx + half, by, half, x0, x1, y0, y1, out);
    visit(index_of_cell, bx, by + half, half, x0, x1, y0, y1, out);
    visit(
        index_of_cell,
        bx + half,
        by + half,
        half,
        x0,
        x1,
        y0,
        y1,
        out,
    );
}

/// Sort and merge adjacent/overlapping inclusive ranges.
pub fn merge_ranges(mut ranges: Vec<(u64, u64)>) -> Vec<(u64, u64)> {
    ranges.sort_unstable();
    let mut merged: Vec<(u64, u64)> = Vec::with_capacity(ranges.len());
    for (lo, hi) in ranges {
        match merged.last_mut() {
            Some((_, prev_hi)) if lo <= prev_hi.saturating_add(1) => {
                *prev_hi = (*prev_hi).max(hi);
            }
            _ => merged.push((lo, hi)),
        }
    }
    merged
}

/// Reduce sorted, disjoint `ranges` to at most `max_ranges` by bridging
/// the smallest gaps, compacting in place. Returns the compacted length,
/// or `None` when the budget already holds.
///
/// Selection of the `max_ranges - 1` gaps to *keep* uses
/// `select_nth_unstable` on the reusable `gaps` buffer — O(n) instead of
/// the old full sort + `BTreeSet` membership (O(n log n) with per-query
/// allocation). Ties break exactly as the old sort did (larger gap, then
/// larger index, wins), so coverings are byte-identical.
fn coalesce_to_budget(
    ranges: &mut [(u64, u64)],
    max_ranges: usize,
    gaps: &mut Vec<(u64, u32)>,
) -> Option<usize> {
    if ranges.len() <= max_ranges {
        return None;
    }
    // Gap before range i+1 is ranges[i+1].0 - ranges[i].1.
    gaps.clear();
    gaps.extend(
        ranges
            .windows(2)
            .enumerate()
            .map(|(i, w)| (w[1].0 - w[0].1, i as u32)),
    );
    let keep = max_ranges - 1;
    if keep == 0 {
        // Budget of one: bridge everything.
        ranges[0].1 = ranges[ranges.len() - 1].1;
        return Some(1);
    }
    // Partition the `keep` largest (by (gap, index), descending) to the
    // front, then order those few by position for the rebuild walk.
    gaps.select_nth_unstable_by(keep - 1, |a, b| b.cmp(a));
    let kept = &mut gaps[..keep];
    kept.sort_unstable_by_key(|&(_, i)| i);
    let mut next_kept = 0usize;
    let mut write = 0usize;
    let mut cur = ranges[0];
    for i in 1..ranges.len() {
        if next_kept < keep && kept[next_kept].1 as usize == i - 1 {
            next_kept += 1;
            ranges[write] = cur;
            write += 1;
            cur = ranges[i];
        } else {
            cur.1 = ranges[i].1;
        }
    }
    ranges[write] = cur;
    Some(write + 1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CurveGrid, CurveKind};
    use proptest::prelude::*;
    use sts_geo::GeoRect;

    fn unit_grid(order: u32, kind: CurveKind) -> CurveGrid {
        CurveGrid::new(GeoRect::new(0.0, 0.0, 1.0, 1.0), order, kind)
    }

    /// Exact cover check: every cell in the block is in some range, and
    /// every range value maps back into the block.
    fn assert_exact_cover(grid: &CurveGrid, x0: u64, x1: u64, y0: u64, y1: u64) {
        let ranges = decompose_blocks(grid, x0, x1, y0, y1, RangeBudget::UNLIMITED);
        let mut covered = 0u64;
        for &(lo, hi) in &ranges {
            for d in lo..=hi {
                let (x, y) = grid.cell_of_index(d);
                assert!(
                    (x0..=x1).contains(&x) && (y0..=y1).contains(&y),
                    "index {d} -> ({x},{y}) outside query block"
                );
                covered += 1;
            }
        }
        assert_eq!(covered, (x1 - x0 + 1) * (y1 - y0 + 1), "cover incomplete");
        // Ranges disjoint & sorted with real gaps.
        for w in ranges.windows(2) {
            assert!(w[0].1 + 1 < w[1].0);
        }
    }

    #[test]
    fn exact_cover_various_blocks_hilbert() {
        let g = unit_grid(6, CurveKind::Hilbert);
        assert_exact_cover(&g, 0, 63, 0, 63);
        assert_exact_cover(&g, 0, 0, 0, 0);
        assert_exact_cover(&g, 5, 20, 7, 33);
        assert_exact_cover(&g, 10, 11, 0, 63);
        assert_exact_cover(&g, 31, 32, 31, 32); // straddles the main quadrants
    }

    #[test]
    fn exact_cover_zorder() {
        let g = unit_grid(6, CurveKind::ZOrder);
        assert_exact_cover(&g, 5, 20, 7, 33);
        assert_exact_cover(&g, 31, 32, 31, 32);
    }

    #[test]
    fn full_grid_is_single_range() {
        let g = unit_grid(8, CurveKind::Hilbert);
        let ranges = decompose_blocks(&g, 0, 255, 0, 255, RangeBudget::UNLIMITED);
        assert_eq!(ranges, vec![(0, 65_535)]);
    }

    #[test]
    fn budget_coalesces_with_superset_coverage() {
        let g = unit_grid(8, CurveKind::Hilbert);
        let exact = decompose_blocks(&g, 10, 200, 17, 23, RangeBudget::UNLIMITED);
        assert!(exact.len() > 8, "need a fragmented query: {}", exact.len());
        let budgeted = decompose_blocks(&g, 10, 200, 17, 23, RangeBudget::new(8));
        assert!(budgeted.len() <= 8);
        // Budgeted cover is a superset: every exact range lies in some
        // budgeted range.
        for &(lo, hi) in &exact {
            assert!(
                budgeted.iter().any(|&(blo, bhi)| blo <= lo && hi <= bhi),
                "({lo},{hi}) lost"
            );
        }
        // Total covered span only grows.
        let span = |rs: &[(u64, u64)]| rs.iter().map(|(lo, hi)| hi - lo + 1).sum::<u64>();
        assert!(span(&budgeted) >= span(&exact));
    }

    #[test]
    fn merge_ranges_basics() {
        assert_eq!(merge_ranges(vec![]), vec![]);
        assert_eq!(
            merge_ranges(vec![(5, 6), (0, 2), (3, 4), (10, 12)]),
            vec![(0, 6), (10, 12)]
        );
        assert_eq!(merge_ranges(vec![(1, 5), (2, 3)]), vec![(1, 5)]);
    }

    #[test]
    fn hilbert_fragments_less_than_zorder_vertical_strip() {
        // Moon et al.'s clustering result: Z-order interleaves x into the
        // low bits, so a *vertical* strip shatters it while Hilbert's
        // symmetry keeps the fragment count low. (Averaged over random
        // rectangles Hilbert also wins — asserted in `locality`.)
        let h = unit_grid(9, CurveKind::Hilbert);
        let z = unit_grid(9, CurveKind::ZOrder);
        let hr = decompose_blocks(&h, 200, 203, 0, 511, RangeBudget::UNLIMITED).len();
        let zr = decompose_blocks(&z, 200, 203, 0, 511, RangeBudget::UNLIMITED).len();
        assert!(hr < zr, "hilbert {hr} vs zorder {zr}");
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        #[test]
        fn prop_exact_cover(x0 in 0u64..32, w in 0u64..32, y0 in 0u64..32, hgt in 0u64..32) {
            let g = unit_grid(5, CurveKind::Hilbert);
            let x1 = (x0 + w).min(31);
            let y1 = (y0 + hgt).min(31);
            assert_exact_cover(&g, x0, x1, y0, y1);
        }

        /// Coalescing under *any* budget only widens: the budgeted
        /// covering's union is a superset of the exact covering, and no
        /// exact range is ever split across two budgeted ranges.
        #[test]
        fn prop_budgeted_cover_is_unsplit_superset(
            x0 in 0u64..64, w in 0u64..64, y0 in 0u64..64, hgt in 0u64..64,
            budget in 1usize..24,
        ) {
            let g = unit_grid(6, CurveKind::Hilbert);
            let x1 = (x0 + w).min(63);
            let y1 = (y0 + hgt).min(63);
            let exact = decompose_blocks(&g, x0, x1, y0, y1, RangeBudget::UNLIMITED);
            let budgeted = decompose_blocks(&g, x0, x1, y0, y1, RangeBudget::new(budget));
            prop_assert!(budgeted.len() <= budget.max(1));
            prop_assert!(budgeted.len() <= exact.len());
            // Budgeted ranges stay sorted and disjoint.
            for w in budgeted.windows(2) {
                prop_assert!(w[0].1 + 1 < w[1].0, "unmerged neighbours {w:?}");
            }
            // Every exact range lies wholly inside exactly one budgeted
            // range (superset, never split).
            for &(lo, hi) in &exact {
                let n = budgeted
                    .iter()
                    .filter(|&&(blo, bhi)| blo <= lo && hi <= bhi)
                    .count();
                prop_assert_eq!(n, 1, "exact range ({}, {}) split or lost", lo, hi);
            }
            // And the union never shrinks.
            let span = |rs: &[(u64, u64)]| rs.iter().map(|(lo, hi)| hi - lo + 1).sum::<u64>();
            prop_assert!(span(&budgeted) >= span(&exact));
        }
    }
}
