//! Query-rectangle → 1D range decomposition.
//!
//! Both supported curves keep every *aligned* `2^k × 2^k` quadtree block
//! contiguous in index space. Decomposition therefore recurses over
//! aligned blocks: blocks fully inside the query emit their whole index
//! range at once, partial blocks split into four children, and single
//! cells bottom out. The result is the exact set of index intervals the
//! query touches — what §4.2.1 encodes into `$or`/`$in` constraints and
//! what Table 8 times.

use crate::grid::CurveGrid;

/// Bounds the number of ranges a decomposition may return.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RangeBudget {
    /// Maximum number of disjoint ranges (minimum 1). Excess ranges are
    /// coalesced across the smallest gaps, trading false-positive index
    /// keys for fewer B-tree seeks.
    pub max_ranges: usize,
}

impl RangeBudget {
    /// No practical limit: the exact decomposition.
    pub const UNLIMITED: RangeBudget = RangeBudget {
        max_ranges: usize::MAX,
    };

    /// Budget of `n` ranges.
    pub fn new(n: usize) -> Self {
        RangeBudget {
            max_ranges: n.max(1),
        }
    }
}

impl Default for RangeBudget {
    /// 64 ranges — a good balance of seek count vs false positives for
    /// the paper's 13-bit curve (ablated in `sts-bench`).
    fn default() -> Self {
        RangeBudget { max_ranges: 64 }
    }
}

/// Decompose the aligned-block cover of `[x0..=x1] × [y0..=y1]`.
pub(crate) fn decompose_blocks(
    grid: &CurveGrid,
    x0: u64,
    x1: u64,
    y0: u64,
    y1: u64,
    budget: RangeBudget,
) -> Vec<(u64, u64)> {
    let mut raw = Vec::new();
    let size = 1u64 << grid.order();
    visit(grid, 0, 0, size, x0, x1, y0, y1, &mut raw);
    let mut merged = merge_ranges(raw);
    coalesce_to_budget(&mut merged, budget.max_ranges);
    merged
}

/// Recursive block visitor.
#[allow(clippy::too_many_arguments)]
fn visit(
    grid: &CurveGrid,
    bx: u64,
    by: u64,
    size: u64,
    x0: u64,
    x1: u64,
    y0: u64,
    y1: u64,
    out: &mut Vec<(u64, u64)>,
) {
    // Disjoint?
    if bx > x1 || by > y1 || bx + size - 1 < x0 || by + size - 1 < y0 {
        return;
    }
    // Fully contained?
    if bx >= x0 && bx + size - 1 <= x1 && by >= y0 && by + size - 1 <= y1 {
        let base = grid.index_of_cell(bx, by) & !(size * size - 1);
        out.push((base, base + size * size - 1));
        return;
    }
    if size == 1 {
        let d = grid.index_of_cell(bx, by);
        out.push((d, d));
        return;
    }
    let half = size / 2;
    visit(grid, bx, by, half, x0, x1, y0, y1, out);
    visit(grid, bx + half, by, half, x0, x1, y0, y1, out);
    visit(grid, bx, by + half, half, x0, x1, y0, y1, out);
    visit(grid, bx + half, by + half, half, x0, x1, y0, y1, out);
}

/// Sort and merge adjacent/overlapping inclusive ranges.
pub fn merge_ranges(mut ranges: Vec<(u64, u64)>) -> Vec<(u64, u64)> {
    ranges.sort_unstable();
    let mut merged: Vec<(u64, u64)> = Vec::with_capacity(ranges.len());
    for (lo, hi) in ranges {
        match merged.last_mut() {
            Some((_, prev_hi)) if lo <= prev_hi.saturating_add(1) => {
                *prev_hi = (*prev_hi).max(hi);
            }
            _ => merged.push((lo, hi)),
        }
    }
    merged
}

/// Reduce `ranges` to at most `max_ranges` by bridging the smallest gaps.
fn coalesce_to_budget(ranges: &mut Vec<(u64, u64)>, max_ranges: usize) {
    if ranges.len() <= max_ranges {
        return;
    }
    // Gap before range i+1 is ranges[i+1].0 - ranges[i].1. Keep the
    // max_ranges-1 largest gaps; bridge the rest.
    let mut gaps: Vec<(u64, usize)> = ranges
        .windows(2)
        .enumerate()
        .map(|(i, w)| (w[1].0 - w[0].1, i))
        .collect();
    gaps.sort_unstable_by(|a, b| b.cmp(a));
    let keep: std::collections::BTreeSet<usize> =
        gaps.iter().take(max_ranges - 1).map(|&(_, i)| i).collect();
    let old = std::mem::take(ranges);
    let mut cur = old[0];
    for (i, r) in old.iter().enumerate().skip(1) {
        if keep.contains(&(i - 1)) {
            ranges.push(cur);
            cur = *r;
        } else {
            cur.1 = r.1;
        }
    }
    ranges.push(cur);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CurveGrid, CurveKind};
    use proptest::prelude::*;
    use sts_geo::GeoRect;

    fn unit_grid(order: u32, kind: CurveKind) -> CurveGrid {
        CurveGrid::new(GeoRect::new(0.0, 0.0, 1.0, 1.0), order, kind)
    }

    /// Exact cover check: every cell in the block is in some range, and
    /// every range value maps back into the block.
    fn assert_exact_cover(grid: &CurveGrid, x0: u64, x1: u64, y0: u64, y1: u64) {
        let ranges = decompose_blocks(grid, x0, x1, y0, y1, RangeBudget::UNLIMITED);
        let mut covered = 0u64;
        for &(lo, hi) in &ranges {
            for d in lo..=hi {
                let (x, y) = grid.cell_of_index(d);
                assert!(
                    (x0..=x1).contains(&x) && (y0..=y1).contains(&y),
                    "index {d} -> ({x},{y}) outside query block"
                );
                covered += 1;
            }
        }
        assert_eq!(covered, (x1 - x0 + 1) * (y1 - y0 + 1), "cover incomplete");
        // Ranges disjoint & sorted with real gaps.
        for w in ranges.windows(2) {
            assert!(w[0].1 + 1 < w[1].0);
        }
    }

    #[test]
    fn exact_cover_various_blocks_hilbert() {
        let g = unit_grid(6, CurveKind::Hilbert);
        assert_exact_cover(&g, 0, 63, 0, 63);
        assert_exact_cover(&g, 0, 0, 0, 0);
        assert_exact_cover(&g, 5, 20, 7, 33);
        assert_exact_cover(&g, 10, 11, 0, 63);
        assert_exact_cover(&g, 31, 32, 31, 32); // straddles the main quadrants
    }

    #[test]
    fn exact_cover_zorder() {
        let g = unit_grid(6, CurveKind::ZOrder);
        assert_exact_cover(&g, 5, 20, 7, 33);
        assert_exact_cover(&g, 31, 32, 31, 32);
    }

    #[test]
    fn full_grid_is_single_range() {
        let g = unit_grid(8, CurveKind::Hilbert);
        let ranges = decompose_blocks(&g, 0, 255, 0, 255, RangeBudget::UNLIMITED);
        assert_eq!(ranges, vec![(0, 65_535)]);
    }

    #[test]
    fn budget_coalesces_with_superset_coverage() {
        let g = unit_grid(8, CurveKind::Hilbert);
        let exact = decompose_blocks(&g, 10, 200, 17, 23, RangeBudget::UNLIMITED);
        assert!(exact.len() > 8, "need a fragmented query: {}", exact.len());
        let budgeted = decompose_blocks(&g, 10, 200, 17, 23, RangeBudget::new(8));
        assert!(budgeted.len() <= 8);
        // Budgeted cover is a superset: every exact range lies in some
        // budgeted range.
        for &(lo, hi) in &exact {
            assert!(
                budgeted.iter().any(|&(blo, bhi)| blo <= lo && hi <= bhi),
                "({lo},{hi}) lost"
            );
        }
        // Total covered span only grows.
        let span = |rs: &[(u64, u64)]| rs.iter().map(|(lo, hi)| hi - lo + 1).sum::<u64>();
        assert!(span(&budgeted) >= span(&exact));
    }

    #[test]
    fn merge_ranges_basics() {
        assert_eq!(merge_ranges(vec![]), vec![]);
        assert_eq!(
            merge_ranges(vec![(5, 6), (0, 2), (3, 4), (10, 12)]),
            vec![(0, 6), (10, 12)]
        );
        assert_eq!(merge_ranges(vec![(1, 5), (2, 3)]), vec![(1, 5)]);
    }

    #[test]
    fn hilbert_fragments_less_than_zorder_vertical_strip() {
        // Moon et al.'s clustering result: Z-order interleaves x into the
        // low bits, so a *vertical* strip shatters it while Hilbert's
        // symmetry keeps the fragment count low. (Averaged over random
        // rectangles Hilbert also wins — asserted in `locality`.)
        let h = unit_grid(9, CurveKind::Hilbert);
        let z = unit_grid(9, CurveKind::ZOrder);
        let hr = decompose_blocks(&h, 200, 203, 0, 511, RangeBudget::UNLIMITED).len();
        let zr = decompose_blocks(&z, 200, 203, 0, 511, RangeBudget::UNLIMITED).len();
        assert!(hr < zr, "hilbert {hr} vs zorder {zr}");
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        #[test]
        fn prop_exact_cover(x0 in 0u64..32, w in 0u64..32, y0 in 0u64..32, hgt in 0u64..32) {
            let g = unit_grid(5, CurveKind::Hilbert);
            let x1 = (x0 + w).min(31);
            let y1 = (y0 + hgt).min(31);
            assert_exact_cover(&g, x0, x1, y0, y1);
        }
    }
}
