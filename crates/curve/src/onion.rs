//! The Onion curve (Xu, Tirthapura et al., arXiv:1801.07399).
//!
//! The curve peels the `n × n` grid like an onion: it walks the
//! outermost square ring counter-clockwise (up the left edge, right
//! along the top, down the right edge, left along the bottom), then
//! recurses into the `(n-2) × (n-2)` interior. Every ring is one
//! contiguous index run, which gives near-optimal clustering for range
//! queries that touch the domain boundary — the regime where recursive
//! curves (Hilbert, Z-order) fragment worst.
//!
//! Unlike the quadtree curves, aligned `2^k × 2^k` blocks are *not*
//! contiguous in onion index space, so rectangle decomposition walks
//! rings instead of blocks: each ring intersecting the query rectangle
//! contributes up to four clipped edge intervals, merged on insert by
//! the shared interval treap and budget-coalesced exactly like the
//! Hilbert covering.

use crate::curve::{Curve, CurveFamily};
use crate::grid::{cell_of_uniform, cell_rect_uniform, cell_span_uniform, validate_grid};
use crate::ranges::{finish_covering, RangeBudget};
use crate::CoveringScratch;
use sts_geo::{GeoPoint, GeoRect};

/// An onion curve laid over a uniform `2^order × 2^order` grid on a
/// lon/lat extent.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct OnionCurve {
    extent: GeoRect,
    order: u32,
}

impl OnionCurve {
    /// Onion curve over `extent` at `order` bits per axis.
    pub fn new(extent: GeoRect, order: u32) -> Self {
        validate_grid(&extent, order);
        OnionCurve { extent, order }
    }

    fn side(&self) -> u64 {
        1 << self.order
    }
}

/// Onion index of cell `(x, y)` on an `n × n` grid.
///
/// The cell's ring is `k = min(x, y, n-1-x, n-1-y)`; rings 0..k-1
/// contribute `n² - m²` indices (with `m = n - 2k` the ring's side),
/// and the position within ring k counts counter-clockwise from the
/// ring's bottom-left corner.
pub fn onion_xy2d(n: u64, x: u64, y: u64) -> u64 {
    debug_assert!(x < n && y < n);
    let k = x.min(y).min(n - 1 - x).min(n - 1 - y);
    let lo = k;
    let hi = n - 1 - k;
    let e = hi - lo; // ring side minus one
    let m = e + 1;
    let base = n * n - m * m;
    let (u, v) = (x - lo, y - lo);
    let pos = if u == 0 {
        v // left edge, upward
    } else if v == e {
        e + u // top edge, rightward
    } else if u == e {
        2 * e + (e - v) // right edge, downward
    } else {
        3 * e + (e - u) // bottom edge, leftward
    };
    base + pos
}

/// Inverse of [`onion_xy2d`].
pub fn onion_d2xy(n: u64, d: u64) -> (u64, u64) {
    debug_assert!(d < n * n);
    // `d` lies on the ring of side `m`: the smallest even m with
    // (m-2)² < n² - d ≤ m².
    let t = n * n - d;
    let mut c = isqrt(t);
    if c * c < t {
        c += 1;
    }
    let m = c + (c % 2);
    let k = (n - m) / 2;
    let lo = k;
    let hi = n - 1 - k;
    let e = hi - lo;
    let pos = d - (n * n - m * m);
    if pos <= e {
        (lo, lo + pos)
    } else if pos <= 2 * e {
        (lo + (pos - e), hi)
    } else if pos <= 3 * e {
        (hi, hi - (pos - 2 * e))
    } else {
        (hi - (pos - 3 * e), lo)
    }
}

/// Integer square root (floor), exact for any `u64` the grid can emit.
fn isqrt(t: u64) -> u64 {
    let mut s = (t as f64).sqrt() as u64;
    while s.checked_mul(s).is_none_or(|sq| sq > t) {
        s -= 1;
    }
    while (s + 1) * (s + 1) <= t {
        s += 1;
    }
    s
}

impl Curve for OnionCurve {
    fn family(&self) -> CurveFamily {
        CurveFamily::Onion
    }

    fn order(&self) -> u32 {
        self.order
    }

    fn extent(&self) -> &GeoRect {
        &self.extent
    }

    fn cell_of(&self, p: GeoPoint) -> (u64, u64) {
        cell_of_uniform(&self.extent, self.order, p)
    }

    fn index_of_cell(&self, x: u64, y: u64) -> u64 {
        onion_xy2d(self.side(), x, y)
    }

    fn cell_of_index(&self, d: u64) -> (u64, u64) {
        onion_d2xy(self.side(), d)
    }

    fn cell_rect(&self, x: u64, y: u64) -> GeoRect {
        cell_rect_uniform(&self.extent, self.order, x, y)
    }

    fn cell_span(&self, rect: &GeoRect) -> Option<(u64, u64, u64, u64)> {
        cell_span_uniform(&self.extent, self.order, rect)
    }

    /// Ring-walk decomposition: for every ring intersecting the query
    /// span, clip the four ring edges against the span and emit the
    /// surviving index intervals. Each ring is contiguous, so a span
    /// hugging the boundary collapses to very few ranges.
    fn decompose_cells_into(
        &self,
        (x0, x1, y0, y1): (u64, u64, u64, u64),
        budget: RangeBudget,
        scratch: &mut CoveringScratch,
        out: &mut Vec<(u64, u64)>,
    ) {
        let n = self.side();
        scratch.tree.clear();
        // Ring k intersects the span iff the span is neither strictly
        // inside ring k's interior (k < kmin) nor strictly outside its
        // square (k > kmax).
        let kmin = x0.min(y0).min(n - 1 - x1).min(n - 1 - y1);
        let kmax = x1.min(y1).min(n - 1 - x0).min(n - 1 - y0).min(n / 2 - 1);
        for k in kmin..=kmax {
            let lo = k;
            let hi = n - 1 - k;
            let e = hi - lo;
            let m = e + 1;
            let base = n * n - m * m;
            // Left edge: x = lo, y ∈ [lo, hi], pos = y - lo.
            if (x0..=x1).contains(&lo) {
                let (ys, ye) = (lo.max(y0), hi.min(y1));
                if ys <= ye {
                    scratch.tree.insert(base + (ys - lo), base + (ye - lo));
                }
            }
            // Top edge: y = hi, x ∈ [lo+1, hi], pos = e + (x - lo).
            if (y0..=y1).contains(&hi) {
                let (xs, xe) = ((lo + 1).max(x0), hi.min(x1));
                if xs <= xe {
                    scratch
                        .tree
                        .insert(base + e + (xs - lo), base + e + (xe - lo));
                }
            }
            // Right edge: x = hi, y ∈ [lo, hi-1], pos = 2e + (hi - y).
            if (x0..=x1).contains(&hi) {
                let (ys, ye) = (lo.max(y0), (hi - 1).min(y1));
                if ys <= ye {
                    scratch
                        .tree
                        .insert(base + 2 * e + (hi - ye), base + 2 * e + (hi - ys));
                }
            }
            // Bottom edge: y = lo, x ∈ [lo+1, hi-1], pos = 3e + (hi - x).
            if (y0..=y1).contains(&lo) && e >= 2 {
                let (xs, xe) = ((lo + 1).max(x0), (hi - 1).min(x1));
                if xs <= xe {
                    scratch
                        .tree
                        .insert(base + 3 * e + (hi - xe), base + 3 * e + (hi - xs));
                }
            }
        }
        finish_covering(scratch, budget, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use sts_geo::WORLD;

    #[test]
    fn bijective_on_small_grids() {
        for order in 1..=5u32 {
            let n = 1u64 << order;
            let mut seen = vec![false; (n * n) as usize];
            for x in 0..n {
                for y in 0..n {
                    let d = onion_xy2d(n, x, y);
                    assert!(d < n * n, "index {d} out of range");
                    assert!(!seen[d as usize], "index {d} hit twice");
                    seen[d as usize] = true;
                    assert_eq!(onion_d2xy(n, d), (x, y), "inverse broke at d={d}");
                }
            }
        }
    }

    #[test]
    fn walk_is_a_hamiltonian_path() {
        // Consecutive indices are 4-adjacent cells — including the hop
        // from each ring's last cell onto the next ring's first.
        let n = 32u64;
        for d in 0..(n * n - 1) {
            let (x0, y0) = onion_d2xy(n, d);
            let (x1, y1) = onion_d2xy(n, d + 1);
            let dist = x0.abs_diff(x1) + y0.abs_diff(y1);
            assert_eq!(dist, 1, "jump at d={d}: ({x0},{y0}) -> ({x1},{y1})");
        }
    }

    #[test]
    fn boundary_query_is_one_range() {
        // A full row along the bottom boundary lies in the outer ring's
        // bottom+corners: at most 3 ranges; the full outer ring is 1.
        let c = OnionCurve::new(WORLD, 6);
        let ranges = c.decompose_rect(&WORLD, RangeBudget::UNLIMITED);
        assert_eq!(ranges, vec![(0, 64 * 64 - 1)]);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn prop_exact_cover(x0 in 0u64..32, w in 0u64..32, y0 in 0u64..32, hgt in 0u64..32) {
            let c = OnionCurve::new(WORLD, 5);
            let x1 = (x0 + w).min(31);
            let y1 = (y0 + hgt).min(31);
            let mut out = Vec::new();
            c.decompose_cells_into(
                (x0, x1, y0, y1),
                RangeBudget::UNLIMITED,
                &mut CoveringScratch::new(),
                &mut out,
            );
            let mut covered = 0u64;
            for &(lo, hi) in &out {
                for d in lo..=hi {
                    let (x, y) = c.cell_of_index(d);
                    prop_assert!(
                        (x0..=x1).contains(&x) && (y0..=y1).contains(&y),
                        "index {} -> ({},{}) outside query", d, x, y
                    );
                    covered += 1;
                }
            }
            prop_assert_eq!(covered, (x1 - x0 + 1) * (y1 - y0 + 1), "cover incomplete");
            for w in out.windows(2) {
                prop_assert!(w[0].1 + 1 < w[1].0, "unmerged neighbours {:?}", w);
            }
        }
    }
}
