//! Space-filling curves and query-rectangle decomposition.
//!
//! The paper's approach (§4.2) replaces MongoDB's built-in spatial index
//! with a single `hilbertIndex` field: the 1D Hilbert value of each
//! point's grid cell, indexed by a plain B-tree and used as the leading
//! shard-key field. This crate supplies:
//!
//! * [`Curve`] — the pluggable curve contract (cell ↔ index bijection +
//!   query-rectangle decomposition) every family implements, selected
//!   via [`CurveFamily`];
//! * [`hilbert`] — the 2D Hilbert curve (`xy2d`/`d2xy`), any order ≤ 31;
//! * [`zorder`] — Z-order (bit interleaving) for ablation comparisons;
//! * [`onion`] — the Onion curve (Xu et al., arXiv:1801.07399):
//!   concentric rings with near-optimal clustering at the domain edge;
//! * [`skewgh`] — the entropy-maximizing skew-adaptive GeoHash (after
//!   Arnold 2015): Z-order topology over bucket boundaries fit from a
//!   data sample;
//! * [`CurveGrid`] — a curve laid over a lon/lat extent: the world extent
//!   gives the paper's `hil` method, the data-MBR extent gives `hil*`;
//! * [`CurveGrid::decompose_rect`] — the query-side algorithm of Table 8:
//!   turn a query rectangle into sorted, merged 1D index ranges;
//! * [`locality`] — clustering metrics in the spirit of Moon et al. (ref. \[14\] of the paper),
//!   used by the ablation benches to show *why* Hilbert beats Z-order.
//!
//! # Example
//!
//! ```
//! use sts_curve::{CurveGrid, RangeBudget, PAPER_CURVE_ORDER};
//! use sts_geo::{GeoPoint, GeoRect};
//!
//! let grid = CurveGrid::world(PAPER_CURVE_ORDER);
//! let athens = GeoPoint::new(23.727539, 37.983810);
//! let h = grid.index_of(athens); // the document's `hilbertIndex`
//! assert!(h < grid.total_cells());
//!
//! // Query side: a rectangle becomes a few 1D index intervals.
//! let rect = GeoRect::new(23.6, 37.9, 23.9, 38.1);
//! let ranges = grid.decompose_rect(&rect, RangeBudget::default());
//! assert!(!ranges.is_empty());
//! assert!(ranges.iter().any(|&(lo, hi)| (lo..=hi).contains(&h)));
//! ```

pub mod hilbert;
pub mod locality;
pub mod onion;
pub mod skewgh;
pub mod zorder;

mod curve;
mod grid;
mod interval;
mod ranges;

pub use curve::{Curve, CurveFamily};
pub use grid::{CurveGrid, CurveKind};
pub use interval::IntervalTree;
pub use onion::OnionCurve;
pub use ranges::{merge_ranges, CoveringScratch, RangeBudget};
pub use skewgh::SkewGeoHash;

/// The paper's curve precision: 13 bits per axis (§5.1 methodology).
pub const PAPER_CURVE_ORDER: u32 = 13;
