//! Entropy-maximizing skew-adaptive GeoHash (after Arnold 2015).
//!
//! Classic GeoHash halves each axis at the midpoint, so under skewed
//! data most cells are empty while a few hold almost everything — the
//! index-entropy of the cell histogram is far below its `2·order`-bit
//! maximum. This variant fits the per-axis bucket boundaries to the
//! *quantiles of a data sample* (blended with the uniform grid for
//! robustness), equalizing expected cell occupancy and thereby pushing
//! the cell-histogram entropy toward its maximum — a direct
//! generalization of the paper's `hil*` trick of spending the bit
//! budget on the data MBR.
//!
//! The cell *topology* stays bit-interleaved Z-order, so the aligned
//! quadtree-block decomposition remains exact (block contiguity is a
//! property of the bit interleaving on cell coordinates, independent of
//! where the cell boundaries sit geographically) and codes render as
//! GeoHash base32 via [`sts_encoding::curve_cell_code`].

use crate::curve::{fnv1a, Curve, CurveFamily};
use crate::grid::validate_grid;
use crate::ranges::{decompose_blocks_generic_into, RangeBudget};
use crate::zorder;
use crate::CoveringScratch;
use sts_geo::{GeoPoint, GeoRect};

/// Weight of the sample quantiles in the boundary blend; the remaining
/// `1 - ALPHA` comes from the uniform grid, which keeps boundaries
/// strictly monotone even for degenerate samples (all points equal) and
/// bounds the resolution distortion an unrepresentative sample can
/// cause to `1 / (1 - ALPHA)`. The floor is deliberately tiny: a dense
/// cluster inside a world extent needs two orders of magnitude of
/// boundary compression before cell occupancy equalizes.
const ALPHA: f64 = 0.99;

/// Cap on sample points consulted per axis; quantile fitting is
/// O(n log n) in the sample and the blend saturates well before this.
const MAX_SAMPLE: usize = 65_536;

/// A skew-adaptive GeoHash grid: Z-order topology over data-fitted,
/// per-axis bucket boundaries.
#[derive(Clone, Debug, PartialEq)]
pub struct SkewGeoHash {
    extent: GeoRect,
    order: u32,
    /// `2^order + 1` strictly increasing lon boundaries spanning the
    /// extent; cell `x` covers `[lon_bounds[x], lon_bounds[x+1])`.
    lon_bounds: Vec<f64>,
    lat_bounds: Vec<f64>,
    boundary_hash: u64,
}

impl SkewGeoHash {
    /// Fit bucket boundaries to `sample` over `extent` at `order` bits
    /// per axis. Deterministic: the same sample (in any order) yields
    /// the same grid. An empty sample yields the uniform grid.
    pub fn fit(extent: GeoRect, order: u32, sample: &[GeoPoint]) -> Self {
        validate_grid(&extent, order);
        let mut lons: Vec<f64> = Vec::with_capacity(sample.len().min(MAX_SAMPLE));
        let mut lats: Vec<f64> = Vec::with_capacity(sample.len().min(MAX_SAMPLE));
        let stride = sample.len().div_ceil(MAX_SAMPLE).max(1);
        for p in sample.iter().step_by(stride) {
            lons.push(p.lon.clamp(extent.min_lon, extent.max_lon));
            lats.push(p.lat.clamp(extent.min_lat, extent.max_lat));
        }
        let lon_bounds = fit_axis(extent.min_lon, extent.max_lon, order, &mut lons);
        let lat_bounds = fit_axis(extent.min_lat, extent.max_lat, order, &mut lats);
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in lon_bounds.iter().chain(&lat_bounds) {
            h = fnv1a(h, b.to_bits());
        }
        SkewGeoHash {
            extent,
            order,
            lon_bounds,
            lat_bounds,
            boundary_hash: h,
        }
    }

    /// The fitted lon boundaries (`2^order + 1` values).
    pub fn lon_bounds(&self) -> &[f64] {
        &self.lon_bounds
    }

    /// The fitted lat boundaries (`2^order + 1` values).
    pub fn lat_bounds(&self) -> &[f64] {
        &self.lat_bounds
    }

    /// GeoHash-style base32 code of the cell containing `p` (stable
    /// label for dashboards and explain output).
    pub fn cell_code(&self, p: GeoPoint) -> String {
        sts_encoding::curve_cell_code(self.index_of(p), self.order)
    }
}

/// Blend sample quantiles with the uniform grid into `2^order + 1`
/// strictly increasing axis boundaries pinned to `[min, max]`.
fn fit_axis(min: f64, max: f64, order: u32, vals: &mut [f64]) -> Vec<f64> {
    let n = 1usize << order;
    vals.sort_by(f64::total_cmp);
    let span = max - min;
    let mut bounds = Vec::with_capacity(n + 1);
    for i in 0..=n {
        let f = i as f64 / n as f64;
        let uniform = min + span * f;
        let b = if vals.is_empty() || i == 0 || i == n {
            uniform
        } else {
            ALPHA * quantile(vals, f) + (1.0 - ALPHA) * uniform
        };
        bounds.push(b);
    }
    // Strict monotonicity holds analytically (the uniform component
    // contributes a positive step, the quantile component is
    // non-decreasing); guard against pathological fp collapse anyway.
    for i in 1..bounds.len() {
        if bounds[i] <= bounds[i - 1] {
            bounds[i] = bounds[i - 1] + span * f64::EPSILON;
        }
    }
    bounds
}

/// Linear-interpolated quantile of a sorted, non-empty slice.
fn quantile(sorted: &[f64], f: f64) -> f64 {
    let pos = f * (sorted.len() - 1) as f64;
    let i = pos.floor() as usize;
    let frac = pos - i as f64;
    if i + 1 < sorted.len() {
        sorted[i] * (1.0 - frac) + sorted[i + 1] * frac
    } else {
        sorted[i]
    }
}

/// Cell of `v` on a boundary axis: `partition_point` over the interior
/// boundaries, which clamps out-of-extent values to the border cells.
fn axis_cell(bounds: &[f64], v: f64) -> u64 {
    let n = bounds.len() - 1;
    bounds[1..n].partition_point(|&b| b <= v) as u64
}

impl Curve for SkewGeoHash {
    fn family(&self) -> CurveFamily {
        CurveFamily::SkewGeoHash
    }

    fn order(&self) -> u32 {
        self.order
    }

    fn extent(&self) -> &GeoRect {
        &self.extent
    }

    fn cell_of(&self, p: GeoPoint) -> (u64, u64) {
        (
            axis_cell(&self.lon_bounds, p.lon),
            axis_cell(&self.lat_bounds, p.lat),
        )
    }

    fn index_of_cell(&self, x: u64, y: u64) -> u64 {
        zorder::xy2z(self.order, x, y)
    }

    fn cell_of_index(&self, d: u64) -> (u64, u64) {
        zorder::z2xy(self.order, d)
    }

    fn cell_rect(&self, x: u64, y: u64) -> GeoRect {
        GeoRect::new(
            self.lon_bounds[x as usize],
            self.lat_bounds[y as usize],
            self.lon_bounds[x as usize + 1],
            self.lat_bounds[y as usize + 1],
        )
    }

    fn cell_span(&self, rect: &GeoRect) -> Option<(u64, u64, u64, u64)> {
        if !rect.intersects(&self.extent) {
            return None;
        }
        let x0 = axis_cell(&self.lon_bounds, rect.min_lon);
        let x1 = axis_cell(&self.lon_bounds, rect.max_lon);
        let y0 = axis_cell(&self.lat_bounds, rect.min_lat);
        let y1 = axis_cell(&self.lat_bounds, rect.max_lat);
        Some((x0, x1, y0, y1))
    }

    fn decompose_cells_into(
        &self,
        (x0, x1, y0, y1): (u64, u64, u64, u64),
        budget: RangeBudget,
        scratch: &mut CoveringScratch,
        out: &mut Vec<(u64, u64)>,
    ) {
        let order = self.order;
        decompose_blocks_generic_into(
            order,
            &|x, y| zorder::xy2z(order, x, y),
            x0,
            x1,
            y0,
            y1,
            budget,
            scratch,
            out,
        );
    }

    /// Includes the fitted boundaries: refitting on a different sample
    /// yields a different fingerprint, invalidating any cached plans.
    fn fingerprint(&self) -> u64 {
        let e = self.extent();
        let mut h = fnv1a(0xcbf2_9ce4_8422_2325, self.family() as u64);
        h = fnv1a(h, u64::from(self.order));
        for v in [e.min_lon, e.min_lat, e.max_lon, e.max_lat] {
            h = fnv1a(h, v.to_bits());
        }
        fnv1a(h, self.boundary_hash)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sts_geo::WORLD;

    /// A deterministic skewed sample: a dense cluster near Athens plus a
    /// sparse world-wide background.
    fn skewed_sample() -> Vec<GeoPoint> {
        let mut pts = Vec::new();
        let mut s = 0x51372021u64;
        let mut next = || {
            s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (s >> 11) as f64 / (1u64 << 53) as f64
        };
        for i in 0..4000 {
            if i % 10 == 0 {
                pts.push(GeoPoint::new(next() * 360.0 - 180.0, next() * 180.0 - 90.0));
            } else {
                pts.push(GeoPoint::new(23.7 + next() * 0.5, 37.9 + next() * 0.4));
            }
        }
        pts
    }

    #[test]
    fn empty_sample_degrades_to_uniform_grid() {
        let g = SkewGeoHash::fit(WORLD, 4, &[]);
        for (i, b) in g.lon_bounds().iter().enumerate() {
            let expect = -180.0 + 360.0 * i as f64 / 16.0;
            assert!((b - expect).abs() < 1e-9, "bound {i}: {b} vs {expect}");
        }
    }

    #[test]
    fn fit_is_deterministic_and_order_independent() {
        let sample = skewed_sample();
        let a = SkewGeoHash::fit(WORLD, 8, &sample);
        let b = SkewGeoHash::fit(WORLD, 8, &sample);
        assert_eq!(a, b);
        assert_eq!(a.fingerprint(), b.fingerprint());
        let mut reversed = sample.clone();
        reversed.reverse();
        // Same multiset of points → same sorted axis values → same grid.
        let c = SkewGeoHash::fit(WORLD, 8, &reversed);
        assert_eq!(a.lon_bounds(), c.lon_bounds());
        assert_eq!(a.lat_bounds(), c.lat_bounds());
        // A different sample moves the boundaries (and the fingerprint).
        let d = SkewGeoHash::fit(WORLD, 8, &sample[..40]);
        assert_ne!(a.lon_bounds(), d.lon_bounds());
        assert_ne!(a.fingerprint(), d.fingerprint());
    }

    #[test]
    fn boundaries_are_strictly_monotone_and_pinned() {
        let sample = vec![GeoPoint::new(23.7, 37.9); 1000]; // worst case: all equal
        for s in [&skewed_sample()[..], &sample] {
            let g = SkewGeoHash::fit(WORLD, 8, s);
            for bounds in [g.lon_bounds(), g.lat_bounds()] {
                assert_eq!(bounds.len(), 257);
                assert!(bounds.windows(2).all(|w| w[0] < w[1]), "not monotone");
            }
            assert_eq!(g.lon_bounds()[0], -180.0);
            assert_eq!(*g.lon_bounds().last().unwrap(), 180.0);
            assert_eq!(g.lat_bounds()[0], -90.0);
            assert_eq!(*g.lat_bounds().last().unwrap(), 90.0);
        }
    }

    #[test]
    fn fitted_grid_has_higher_cell_entropy_than_uniform() {
        let sample = skewed_sample();
        let skew = SkewGeoHash::fit(WORLD, 5, &sample);
        let uniform = SkewGeoHash::fit(WORLD, 5, &[]);
        let entropy = |g: &SkewGeoHash| {
            let mut counts = vec![0u64; g.total_cells() as usize];
            for p in &sample {
                counts[g.index_of(*p) as usize] += 1;
            }
            let n = sample.len() as f64;
            -counts
                .iter()
                .filter(|&&c| c > 0)
                .map(|&c| {
                    let f = c as f64 / n;
                    f * f.log2()
                })
                .sum::<f64>()
        };
        let (hs, hu) = (entropy(&skew), entropy(&uniform));
        assert!(hs > hu + 1.0, "skew-fit entropy {hs} vs uniform {hu}");
    }

    #[test]
    fn cell_lookup_agrees_with_boundaries_and_clamps() {
        let g = SkewGeoHash::fit(WORLD, 6, &skewed_sample());
        let p = GeoPoint::new(23.8, 38.0);
        let (x, y) = g.cell_of(p);
        assert!(g.cell_rect(x, y).contains(p));
        assert_eq!(g.cell_of(GeoPoint::new(-200.0, -95.0)), (0, 0));
        assert_eq!(g.cell_of(GeoPoint::new(200.0, 95.0)), (63, 63));
        let code = g.cell_code(p);
        assert_eq!(code.len(), 3); // 12 bits → 3 chars
    }
}
