//! The 2D Hilbert curve.
//!
//! Classic iterative formulation: descend the quadtree one level at a
//! time, tracking the reflection/rotation of the curve within each
//! quadrant. Supports any order up to 31 (a 62-bit index), far beyond
//! the paper's 13-bit-per-axis configuration.

/// Maximum supported curve order (bits per axis).
pub const MAX_ORDER: u32 = 31;

/// Map grid coordinates to the Hilbert index. `order` is bits per axis;
/// `x`, `y` must be `< 2^order`.
pub fn xy2d(order: u32, x: u64, y: u64) -> u64 {
    debug_assert!(order <= MAX_ORDER);
    debug_assert!(x < (1 << order) && y < (1 << order));
    if order == 0 {
        return 0;
    }
    let n: u64 = 1 << order;
    let (mut x, mut y) = (x, y);
    let mut d: u64 = 0;
    let mut s: u64 = n / 2;
    while s > 0 {
        let rx = u64::from(x & s > 0);
        let ry = u64::from(y & s > 0);
        d += s * s * ((3 * rx) ^ ry);
        // Rotate the quadrant so the sub-curve is in canonical position.
        if ry == 0 {
            if rx == 1 {
                x = n - 1 - x;
                y = n - 1 - y;
            }
            std::mem::swap(&mut x, &mut y);
        }
        s /= 2;
    }
    d
}

/// Inverse of [`xy2d`]: map a Hilbert index back to grid coordinates.
pub fn d2xy(order: u32, d: u64) -> (u64, u64) {
    debug_assert!(order <= MAX_ORDER);
    debug_assert!(order == 0 || d < (1u64 << (2 * order)));
    let (mut x, mut y) = (0u64, 0u64);
    let mut t = d;
    let mut s: u64 = 1;
    while s < (1 << order) {
        let rx = 1 & (t / 2);
        let ry = 1 & (t ^ rx);
        // Rotate back.
        if ry == 0 {
            if rx == 1 {
                x = s - 1 - x;
                y = s - 1 - y;
            }
            std::mem::swap(&mut x, &mut y);
        }
        x += s * rx;
        y += s * ry;
        t /= 4;
        s *= 2;
    }
    (x, y)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::prelude::*;

    #[test]
    fn order_one_layout() {
        // The order-1 curve visits (0,0) (0,1) (1,1) (1,0).
        assert_eq!(d2xy(1, 0), (0, 0));
        assert_eq!(d2xy(1, 1), (0, 1));
        assert_eq!(d2xy(1, 2), (1, 1));
        assert_eq!(d2xy(1, 3), (1, 0));
    }

    #[test]
    fn exhaustive_bijection_small_orders() {
        for order in 1..=6u32 {
            let n = 1u64 << (2 * order);
            let mut seen = vec![false; n as usize];
            for d in 0..n {
                let (x, y) = d2xy(order, d);
                assert!(x < (1 << order) && y < (1 << order));
                assert_eq!(xy2d(order, x, y), d, "order {order} d {d}");
                let idx = (y * (1 << order) + x) as usize;
                assert!(!seen[idx], "cell visited twice");
                seen[idx] = true;
            }
            assert!(seen.iter().all(|&b| b));
        }
    }

    #[test]
    fn consecutive_indices_are_grid_neighbours() {
        // The defining Hilbert property: steps of 1 along the curve move
        // exactly one cell in the grid.
        for order in [1u32, 3, 5, 8] {
            let n = 1u64 << (2 * order);
            let mut prev = d2xy(order, 0);
            for d in 1..n.min(1 << 16) {
                let cur = d2xy(order, d);
                let dist = prev.0.abs_diff(cur.0) + prev.1.abs_diff(cur.1);
                assert_eq!(dist, 1, "order {order} d {d}: {prev:?} -> {cur:?}");
                prev = cur;
            }
        }
    }

    #[test]
    fn high_order_roundtrip() {
        let mut rng = StdRng::seed_from_u64(7);
        for order in [13u32, 16, 24, 31] {
            for _ in 0..500 {
                // Fully qualified: proptest's prelude re-exports a newer
                // `Rng` trait that would otherwise shadow rand 0.8's.
                let x = rand::Rng::gen_range(&mut rng, 0..(1u64 << order));
                let y = rand::Rng::gen_range(&mut rng, 0..(1u64 << order));
                let d = xy2d(order, x, y);
                assert_eq!(d2xy(order, d), (x, y));
            }
        }
    }

    #[test]
    fn aligned_blocks_are_contiguous() {
        // Any aligned 2^k x 2^k block occupies one contiguous index range
        // of length 4^k — the property range decomposition relies on.
        let order = 6u32;
        for k in 1..=4u32 {
            let size = 1u64 << k;
            for bx in (0..(1u64 << order)).step_by(size as usize) {
                for by in (0..(1u64 << order)).step_by(size as usize) {
                    let base = xy2d(order, bx, by) & !(size * size - 1);
                    for dx in 0..size {
                        for dy in 0..size {
                            let d = xy2d(order, bx + dx, by + dy);
                            assert!(
                                (base..base + size * size).contains(&d),
                                "block ({bx},{by}) size {size} not contiguous"
                            );
                        }
                    }
                }
            }
        }
    }

    proptest! {
        #[test]
        fn prop_roundtrip_order13(x in 0u64..(1 << 13), y in 0u64..(1 << 13)) {
            let d = xy2d(13, x, y);
            prop_assert!(d < (1 << 26));
            prop_assert_eq!(d2xy(13, d), (x, y));
        }
    }
}
