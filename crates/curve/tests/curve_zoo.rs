//! Per-curve property suite: every [`CurveFamily`] must be a cell↔index
//! bijection whose rectangle decomposition covers exactly the query —
//! the contract the store's differential oracles build on.

use proptest::prelude::*;
use std::sync::Arc;
use sts_curve::{CoveringScratch, Curve, CurveFamily, RangeBudget};
use sts_geo::{GeoPoint, GeoRect, WORLD};

/// A deterministic skewed training sample (dense Athens cluster plus a
/// sparse world background) for the data-fitted families.
fn training_sample() -> Vec<GeoPoint> {
    let mut pts = Vec::new();
    let mut s = 0x5137_2021u64;
    let mut next = || {
        s = s
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (s >> 11) as f64 / (1u64 << 53) as f64
    };
    for i in 0..2000 {
        if i % 8 == 0 {
            pts.push(GeoPoint::new(next() * 360.0 - 180.0, next() * 180.0 - 90.0));
        } else {
            pts.push(GeoPoint::new(23.5 + next(), 37.5 + next()));
        }
    }
    pts
}

fn zoo(order: u32) -> Vec<Arc<dyn Curve>> {
    let sample = training_sample();
    CurveFamily::ALL
        .iter()
        .map(|f| f.build(&WORLD, order, &sample))
        .collect()
}

#[test]
fn index_cell_bijectivity_exhaustive_small_order() {
    for curve in zoo(4) {
        let n = curve.cells_per_axis();
        let mut seen = vec![false; (n * n) as usize];
        for x in 0..n {
            for y in 0..n {
                let d = curve.index_of_cell(x, y);
                assert!(
                    d < curve.total_cells(),
                    "{}: index out of range",
                    curve.family()
                );
                assert!(!seen[d as usize], "{}: index {d} hit twice", curve.family());
                seen[d as usize] = true;
                assert_eq!(
                    curve.cell_of_index(d),
                    (x, y),
                    "{}: inverse broke at ({x},{y})",
                    curve.family()
                );
            }
        }
    }
}

#[test]
fn point_lookup_lands_in_cell_rect() {
    for curve in zoo(8) {
        for p in training_sample().iter().step_by(37) {
            let (x, y) = curve.cell_of(*p);
            assert!(
                curve.cell_rect(x, y).contains(*p),
                "{}: {p:?} outside its cell rect",
                curve.family()
            );
        }
    }
}

#[test]
fn skew_geohash_fit_is_deterministic_for_a_fixed_sample() {
    let sample = training_sample();
    let a = CurveFamily::SkewGeoHash.build(&WORLD, 9, &sample);
    let b = CurveFamily::SkewGeoHash.build(&WORLD, 9, &sample);
    assert_eq!(a.fingerprint(), b.fingerprint());
    // Identical coverings for the same query, range for range.
    let rect = GeoRect::new(23.0, 37.0, 25.0, 39.0);
    assert_eq!(
        a.decompose_rect(&rect, RangeBudget::default()),
        b.decompose_rect(&rect, RangeBudget::default())
    );
    // And the fitted grid really differs from the uniform-bucket one.
    let uniform = CurveFamily::SkewGeoHash.build(&WORLD, 9, &[]);
    assert_ne!(a.fingerprint(), uniform.fingerprint());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// Random cells round-trip through index space on every family.
    #[test]
    fn prop_bijectivity_random_cells(x in 0u64..8192, y in 0u64..8192) {
        for curve in zoo(13) {
            let d = curve.index_of_cell(x, y);
            prop_assert!(d < curve.total_cells());
            prop_assert_eq!(curve.cell_of_index(d), (x, y), "family {}", curve.family());
        }
    }

    /// The unlimited-budget decomposition covers exactly the query
    /// span: every covered index maps into the span, the total count
    /// matches, and ranges are sorted with real gaps.
    #[test]
    fn prop_decomposition_is_exact(x0 in 0u64..64, w in 0u64..64, y0 in 0u64..64, h in 0u64..64) {
        let x1 = (x0 + w).min(63);
        let y1 = (y0 + h).min(63);
        for curve in zoo(6) {
            let mut out = Vec::new();
            curve.decompose_cells_into(
                (x0, x1, y0, y1),
                RangeBudget::UNLIMITED,
                &mut CoveringScratch::new(),
                &mut out,
            );
            let mut covered = 0u64;
            for &(lo, hi) in &out {
                for d in lo..=hi {
                    let (x, y) = curve.cell_of_index(d);
                    prop_assert!(
                        (x0..=x1).contains(&x) && (y0..=y1).contains(&y),
                        "{}: index {} -> ({},{}) outside query",
                        curve.family(), d, x, y
                    );
                    covered += 1;
                }
            }
            prop_assert_eq!(
                covered,
                (x1 - x0 + 1) * (y1 - y0 + 1),
                "{}: cover incomplete", curve.family()
            );
            for w in out.windows(2) {
                prop_assert!(w[0].1 + 1 < w[1].0, "{}: unmerged {:?}", curve.family(), w);
            }
        }
    }

    /// A binding budget only widens the covering (superset, never
    /// split), and respects the range cap — on every family.
    #[test]
    fn prop_budget_is_unsplit_superset(
        x0 in 0u64..64, w in 0u64..64, y0 in 0u64..64, h in 0u64..64,
        budget in 1usize..16,
    ) {
        let x1 = (x0 + w).min(63);
        let y1 = (y0 + h).min(63);
        for curve in zoo(6) {
            let mut exact = Vec::new();
            let mut capped = Vec::new();
            let mut scratch = CoveringScratch::new();
            curve.decompose_cells_into((x0, x1, y0, y1), RangeBudget::UNLIMITED, &mut scratch, &mut exact);
            curve.decompose_cells_into((x0, x1, y0, y1), RangeBudget::new(budget), &mut scratch, &mut capped);
            prop_assert!(capped.len() <= budget);
            for &(lo, hi) in &exact {
                let n = capped.iter().filter(|&&(blo, bhi)| blo <= lo && hi <= bhi).count();
                prop_assert_eq!(n, 1, "{}: exact range ({},{}) split or lost", curve.family(), lo, hi);
            }
        }
    }

    /// Geometry→index consistency: a random point's index always falls
    /// inside the decomposition of any rectangle containing the point.
    #[test]
    fn prop_point_in_rect_is_in_covering(
        lon in -170.0f64..170.0, lat in -80.0f64..80.0,
        dlon in 0.1f64..20.0, dlat in 0.1f64..20.0,
    ) {
        let p = GeoPoint::new(lon, lat);
        let rect = GeoRect::new(lon - dlon, lat - dlat, (lon + dlon).min(180.0), (lat + dlat).min(90.0));
        for curve in zoo(8) {
            let d = curve.index_of(p);
            let ranges = curve.decompose_rect(&rect, RangeBudget::default());
            prop_assert!(
                ranges.iter().any(|&(lo, hi)| (lo..=hi).contains(&d)),
                "{}: point index {} not covered by {:?}",
                curve.family(), d, ranges
            );
        }
    }
}
