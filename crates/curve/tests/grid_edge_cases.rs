//! Curve-grid edge cases: extreme budgets, order-1 grids, rects that
//! clip the extent.

use sts_curve::{CurveGrid, CurveKind, RangeBudget};
use sts_geo::{GeoPoint, GeoRect};

fn unit(order: u32) -> CurveGrid {
    CurveGrid::new(GeoRect::new(0.0, 0.0, 1.0, 1.0), order, CurveKind::Hilbert)
}

#[test]
fn budget_of_one_yields_single_superset_range() {
    let g = unit(8);
    let rect = GeoRect::new(0.1, 0.1, 0.9, 0.15); // fragmented strip
    let exact = g.decompose_rect(&rect, RangeBudget::UNLIMITED);
    assert!(exact.len() > 1);
    let one = g.decompose_rect(&rect, RangeBudget::new(1));
    assert_eq!(one.len(), 1);
    assert!(one[0].0 <= exact[0].0);
    assert!(one[0].1 >= exact.last().unwrap().1);
}

#[test]
fn order_one_grid_works() {
    let g = unit(1);
    assert_eq!(g.total_cells(), 4);
    let all = g.decompose_rect(&GeoRect::new(0.0, 0.0, 1.0, 1.0), RangeBudget::UNLIMITED);
    assert_eq!(all, vec![(0, 3)]);
    for (x, y) in [(0.2, 0.2), (0.8, 0.2), (0.2, 0.8), (0.8, 0.8)] {
        let d = g.index_of(GeoPoint::new(x, y));
        assert!(d < 4);
    }
}

#[test]
fn rect_clipping_the_extent_clamps() {
    let g = unit(6);
    // Rect half outside the extent: decomposition covers the inside part.
    let rect = GeoRect::new(-0.5, -0.5, 0.25, 0.25);
    let ranges = g.decompose_rect(&rect, RangeBudget::UNLIMITED);
    assert!(!ranges.is_empty());
    let span: u64 = ranges.iter().map(|(lo, hi)| hi - lo + 1).sum();
    // Covers exactly the intersected quarter-ish of cells: 16×16 = 256.
    assert_eq!(span, 17 * 17, "16 interior cells + clamped border row/col");
}

#[test]
fn zero_budget_is_clamped_to_one() {
    let g = unit(5);
    let rect = GeoRect::new(0.1, 0.1, 0.9, 0.2);
    let r = g.decompose_rect(&rect, RangeBudget::new(0));
    assert_eq!(r.len(), 1);
}

#[test]
fn ranges_always_cover_contained_points() {
    let g = unit(9);
    let rect = GeoRect::new(0.33, 0.41, 0.57, 0.66);
    for budget in [1usize, 2, 7, 64, usize::MAX] {
        let ranges = g.decompose_rect(&rect, RangeBudget::new(budget.min(1 << 20)));
        for i in 0..10 {
            for j in 0..10 {
                let p = GeoPoint::new(
                    0.33 + 0.24 * f64::from(i) / 9.0,
                    0.41 + 0.25 * f64::from(j) / 9.0,
                );
                let d = g.index_of(p);
                assert!(
                    ranges.iter().any(|&(lo, hi)| (lo..=hi).contains(&d)),
                    "budget {budget}: point {p:?} uncovered"
                );
            }
        }
    }
}
