#!/usr/bin/env bash
# Compare two perfsmoke BENCH_*.json reports and gate on regressions.
#
#   scripts/bench_diff.sh <baseline.json> <current.json> [bench-diff flags...]
#
# Thin wrapper over the `bench-diff` binary (crates/bench/src/bin/
# bench_diff.rs) so CI and humans share one entry point. Extra flags
# (e.g. --check, --max-latency-pct 35, --max-counter-pct 5) pass
# through verbatim; the exit code is the gate verdict.
set -euo pipefail

if [[ $# -lt 2 ]]; then
    echo "usage: $0 <baseline.json> <current.json> [--check] [--max-latency-pct N] [--max-counter-pct N]" >&2
    exit 2
fi

cd "$(dirname "$0")/.."
exec cargo run --release --quiet -p sts-bench --bin bench-diff -- "$@"
