//! # sts — scalable spatio-temporal indexing over a document store
//!
//! Umbrella crate re-exporting the whole workspace: a from-scratch,
//! MongoDB-style sharded document store plus the Hilbert-curve
//! spatio-temporal indexing approaches of *"Scalable Spatio-temporal
//! Indexing and Querying over a Document-oriented NoSQL Store"*
//! (EDBT 2021).
//!
//! Start with [`core::StStore`] (see `examples/quickstart.rs`), or dive
//! into the layers:
//!
//! * [`document`] — BSON-like data model,
//! * [`encoding`] — memcomparable key encodings,
//! * [`btree`] — the B+tree behind every index,
//! * [`geo`] — GeoHash cells and rectangle covering,
//! * [`curve`] — Hilbert/Z-order curves and range decomposition,
//! * [`storage`] — record heaps and snappy-lite compression,
//! * [`index`] — secondary indexes (2dsphere included),
//! * [`query`] — filters, trial-based planner, executor,
//! * [`cluster`] — shards, chunks, balancer, zones, mongos router,
//! * [`core`] — the paper's four approaches behind one facade,
//! * [`workload`] — data generators and the paper's query set,
//! * [`obs`] — metrics registry, latency histograms, stage tracing.

pub use sts_btree as btree;
pub use sts_cluster as cluster;
pub use sts_core as core;
pub use sts_curve as curve;
pub use sts_document as document;
pub use sts_encoding as encoding;
pub use sts_geo as geo;
pub use sts_index as index;
pub use sts_obs as obs;
pub use sts_query as query;
pub use sts_storage as storage;
pub use sts_workload as workload;
